//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the workspace (dataset synthesis, randomized HSS
//! sampling, two-means initialization, tuner search) must be reproducible
//! from a seed, so the workspace carries its own small PCG64 generator
//! instead of depending on an external RNG crate whose default seeding is
//! entropy-based.

/// A PCG-XSL-RR 128/64 pseudo-random generator.
///
/// 128-bit state, 64-bit output, with the standard PCG multiplier.  The
/// stream constant is fixed so that two generators with the same seed
/// produce identical sequences on every platform.
#[derive(Clone, Debug)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;
const PCG_DEFAULT_STREAM: u128 = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f;

impl Pcg64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: (PCG_DEFAULT_STREAM << 1) | 1,
        };
        rng.state = rng.state.wrapping_add(seed as u128);
        rng.next_u64();
        rng.state = rng.state.wrapping_add((seed as u128) << 64 | 0x9e37_79b9);
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.inc);
        let state = self.state;
        // XSL-RR output function: xor-fold the 128-bit state then rotate.
        let xored = ((state >> 64) as u64) ^ (state as u64);
        let rot = (state >> 122) as u32;
        xored.rotate_right(rot)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_usize: empty range");
        // Modulo bias is negligible for the ranges used here (n << 2^64).
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample via the Box-Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw u1 away from zero to keep ln(u1) finite.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = if u1 <= f64::MIN_POSITIVE {
            f64::MIN_POSITIVE
        } else {
            u1
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Fills a slice with standard normal samples.
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        for x in out.iter_mut() {
            *x = self.next_gaussian();
        }
    }

    /// Returns `k` distinct indices sampled without replacement from `[0, n)`.
    ///
    /// Uses a partial Fisher-Yates shuffle; O(n) memory, O(k) swaps.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_without_replacement: k > n");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        let n = data.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_usize(i + 1);
            data.swap(i, j);
        }
    }

    /// Derives an independent generator for a sub-task (e.g. a rayon worker)
    /// from this generator's stream.
    pub fn split(&mut self) -> Pcg64 {
        Pcg64::seed_from_u64(self.next_u64())
    }
}

/// A `rows x cols` matrix with independent standard normal entries.
pub fn gaussian_matrix(rng: &mut Pcg64, rows: usize, cols: usize) -> crate::Matrix {
    let mut data = vec![0.0; rows * cols];
    rng.fill_gaussian(&mut data);
    crate::Matrix::from_vec(rows, cols, data)
}

/// A `rows x cols` matrix with independent uniform entries in `[lo, hi)`.
pub fn uniform_matrix(
    rng: &mut Pcg64,
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
) -> crate::Matrix {
    let data = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
    crate::Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&y));
        }
    }

    #[test]
    fn next_usize_bounds() {
        let mut rng = Pcg64::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.next_usize(17) < 17);
        }
        assert_eq!(rng.next_usize(1), 0);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Pcg64::seed_from_u64(123);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean too far from 0: {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance too far from 1: {var}");
    }

    #[test]
    fn gaussian_with_params() {
        let mut rng = Pcg64::seed_from_u64(5);
        let n = 20_000;
        let mean_est = (0..n).map(|_| rng.gaussian(3.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean_est - 3.0).abs() < 0.05);
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = Pcg64::seed_from_u64(11);
        let s = rng.sample_without_replacement(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = Pcg64::seed_from_u64(13);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent() {
        let mut rng = Pcg64::seed_from_u64(17);
        let mut s1 = rng.split();
        let mut s2 = rng.split();
        let same = (0..32).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn matrix_generators() {
        let mut rng = Pcg64::seed_from_u64(21);
        let g = gaussian_matrix(&mut rng, 10, 5);
        assert_eq!(g.shape(), (10, 5));
        let u = uniform_matrix(&mut rng, 4, 4, 2.0, 3.0);
        assert!(u.data().iter().all(|&x| (2.0..3.0).contains(&x)));
    }
}
