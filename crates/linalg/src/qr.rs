//! Householder QR and column-pivoted (rank-revealing) QR factorizations.

use crate::blas;
use crate::matrix::Matrix;

/// Thin QR factorization `A = Q R` with `Q` of size `m x k`, `R` of size
/// `k x n`, `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Orthonormal factor (`m x k`).
    pub q: Matrix,
    /// Upper-triangular factor (`k x n`).
    pub r: Matrix,
}

/// Column-pivoted QR factorization `A P = Q R` with a numerical-rank
/// estimate.
#[derive(Debug, Clone)]
pub struct PivotedQr {
    /// Orthonormal factor (`m x k`).
    pub q: Matrix,
    /// Upper-triangular factor (`k x n`), columns in pivoted order.
    pub r: Matrix,
    /// Column permutation: column `j` of `R` corresponds to column
    /// `perm[j]` of `A`.
    pub perm: Vec<usize>,
    /// Numerical rank detected at the requested tolerance.
    pub rank: usize,
}

/// Householder QR of a general rectangular matrix.
///
/// Returns the thin factorization; `Q` has orthonormal columns and
/// `Q R` reconstructs `A` to machine precision.
pub fn householder_qr(a: &Matrix) -> QrFactors {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut r = a.clone();
    // Householder vectors, stored per reflection (the j-th has length m - j).
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the Householder vector annihilating R[j+1.., j].
        let mut v: Vec<f64> = (j..m).map(|i| r[(i, j)]).collect();
        let alpha = blas::nrm2(&v);
        if alpha == 0.0 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * alpha;
        let vnorm = blas::nrm2(&v);
        if vnorm > 0.0 {
            blas::scal(1.0 / vnorm, &mut v);
        }
        // Apply the reflector to the trailing columns of R.
        for col in j..n {
            let mut proj = 0.0;
            for (off, &vi) in v.iter().enumerate() {
                proj += vi * r[(j + off, col)];
            }
            proj *= 2.0;
            for (off, &vi) in v.iter().enumerate() {
                r[(j + off, col)] -= proj * vi;
            }
        }
        vs.push(v);
    }

    // Form the thin Q by applying the reflectors to the first k columns of I.
    let mut q = Matrix::zeros(m, k);
    for i in 0..k {
        q[(i, i)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for col in 0..k {
            let mut proj = 0.0;
            for (off, &vi) in v.iter().enumerate() {
                proj += vi * q[(j + off, col)];
            }
            proj *= 2.0;
            for (off, &vi) in v.iter().enumerate() {
                q[(j + off, col)] -= proj * vi;
            }
        }
    }

    // Zero out the strictly-lower part of R and truncate to k rows.
    let mut r_thin = Matrix::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r_thin[(i, j)] = r[(i, j)];
        }
    }
    // Normalize so that the diagonal of R is non-negative (convenient and
    // makes the factorization unique for full-rank A).
    for i in 0..k {
        if r_thin[(i, i)] < 0.0 {
            for j in i..n {
                r_thin[(i, j)] = -r_thin[(i, j)];
            }
            for row in 0..m {
                q[(row, i)] = -q[(row, i)];
            }
        }
    }
    QrFactors { q, r: r_thin }
}

/// Orthonormalizes the columns of `a` (thin Q factor only).
pub fn orthonormalize(a: &Matrix) -> Matrix {
    householder_qr(a).q
}

/// Full QR factorization `A = Q R` with a square orthogonal `Q` (`m x m`)
/// and `R` of size `m x n` (upper trapezoidal).
///
/// The ULV factorization needs the *full* orthogonal factor so it can zero
/// out the coupling rows of each HSS block; the thin factorization is not
/// enough there.
pub fn full_qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut r = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        let mut v: Vec<f64> = (j..m).map(|i| r[(i, j)]).collect();
        let alpha = blas::nrm2(&v);
        if alpha == 0.0 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * alpha;
        let vnorm = blas::nrm2(&v);
        if vnorm > 0.0 {
            blas::scal(1.0 / vnorm, &mut v);
        }
        for col in j..n {
            let mut proj = 0.0;
            for (off, &vi) in v.iter().enumerate() {
                proj += vi * r[(j + off, col)];
            }
            proj *= 2.0;
            for (off, &vi) in v.iter().enumerate() {
                r[(j + off, col)] -= proj * vi;
            }
        }
        vs.push(v);
    }

    // Accumulate the full Q by applying the reflectors to the identity.
    let mut q = Matrix::identity(m);
    for j in (0..k).rev() {
        let v = &vs[j];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for col in 0..m {
            let mut proj = 0.0;
            for (off, &vi) in v.iter().enumerate() {
                proj += vi * q[(j + off, col)];
            }
            proj *= 2.0;
            for (off, &vi) in v.iter().enumerate() {
                q[(j + off, col)] -= proj * vi;
            }
        }
    }

    // Zero the strictly-lower part of R below the diagonal.
    for j in 0..n {
        for i in (j + 1)..m {
            r[(i, j)] = 0.0;
        }
    }
    (q, r)
}

/// Column-pivoted QR (Golub-Businger) with early termination.
///
/// The factorization stops as soon as the largest remaining column norm
/// drops below `tol` times the largest initial column norm, or after
/// `max_rank` steps (`max_rank = 0` means no cap).  This is the
/// rank-revealing workhorse behind low-rank compression and interpolative
/// decompositions.
pub fn column_pivoted_qr(a: &Matrix, tol: f64, max_rank: usize) -> PivotedQr {
    let (m, n) = a.shape();
    let kmax = {
        let k = m.min(n);
        if max_rank == 0 {
            k
        } else {
            k.min(max_rank)
        }
    };
    let mut work = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut col_norms: Vec<f64> = (0..n).map(|j| blas::nrm2(&work.col(j))).collect();
    let norm_ref = col_norms.iter().cloned().fold(0.0_f64, f64::max);
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(kmax);
    let mut rank = 0;

    for j in 0..kmax {
        // Pivot: bring the column with the largest remaining norm to front.
        let (pivot, &pivot_norm) = col_norms[j..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(off, v)| (j + off, v))
            .unwrap();
        if norm_ref == 0.0 || pivot_norm <= tol * norm_ref {
            break;
        }
        if pivot != j {
            // Swap columns j and pivot in the working matrix and bookkeeping.
            for i in 0..m {
                let tmp = work[(i, j)];
                work[(i, j)] = work[(i, pivot)];
                work[(i, pivot)] = tmp;
            }
            perm.swap(j, pivot);
            col_norms.swap(j, pivot);
        }

        // Householder reflector for column j.
        let mut v: Vec<f64> = (j..m).map(|i| work[(i, j)]).collect();
        let alpha = blas::nrm2(&v);
        if alpha == 0.0 {
            break;
        }
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * alpha;
        let vnorm = blas::nrm2(&v);
        blas::scal(1.0 / vnorm, &mut v);
        for col in j..n {
            let mut proj = 0.0;
            for (off, &vi) in v.iter().enumerate() {
                proj += vi * work[(j + off, col)];
            }
            proj *= 2.0;
            for (off, &vi) in v.iter().enumerate() {
                work[(j + off, col)] -= proj * vi;
            }
        }
        vs.push(v);
        rank = j + 1;

        // Recompute the trailing column norms exactly.  The classical
        // running downdate loses accuracy through cancellation and then
        // over-estimates the numerical rank; at the block sizes used inside
        // the hierarchical formats the exact recomputation is cheap.
        for col in (j + 1)..n {
            let tail: Vec<f64> = ((j + 1)..m).map(|i| work[(i, col)]).collect();
            col_norms[col] = blas::nrm2(&tail);
        }
    }

    // Assemble thin Q (m x rank).
    let mut q = Matrix::zeros(m, rank);
    for i in 0..rank {
        q[(i, i)] = 1.0;
    }
    for j in (0..rank).rev() {
        let v = &vs[j];
        for col in 0..rank {
            let mut proj = 0.0;
            for (off, &vi) in v.iter().enumerate() {
                proj += vi * q[(j + off, col)];
            }
            proj *= 2.0;
            for (off, &vi) in v.iter().enumerate() {
                q[(j + off, col)] -= proj * vi;
            }
        }
    }

    // Upper-trapezoidal R (rank x n), in pivoted column order.
    let mut r = Matrix::zeros(rank, n);
    for i in 0..rank {
        for jc in i..n {
            r[(i, jc)] = work[(i, jc)];
        }
    }

    PivotedQr { q, r, perm, rank }
}

impl PivotedQr {
    /// Reconstructs the original matrix (undoing the column permutation).
    pub fn reconstruct(&self) -> Matrix {
        let qr = blas::matmul(&self.q, &self.r);
        let n = self.perm.len();
        let mut out = Matrix::zeros(qr.nrows(), n);
        for (j, &pj) in self.perm.iter().enumerate() {
            out.set_col(pj, &qr.col(j));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, matmul_tn, relative_error};
    use crate::random::{gaussian_matrix, Pcg64};

    fn check_orthonormal(q: &Matrix, tol: f64) {
        let qtq = matmul_tn(q, q);
        let eye = Matrix::identity(q.ncols());
        assert!(
            relative_error(&eye, &qtq) < tol,
            "Q^T Q deviates from identity by {}",
            relative_error(&eye, &qtq)
        );
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let mut rng = Pcg64::seed_from_u64(1);
        let a = gaussian_matrix(&mut rng, 30, 12);
        let f = householder_qr(&a);
        assert_eq!(f.q.shape(), (30, 12));
        assert_eq!(f.r.shape(), (12, 12));
        check_orthonormal(&f.q, 1e-12);
        assert!(relative_error(&a, &matmul(&f.q, &f.r)) < 1e-12);
    }

    #[test]
    fn qr_reconstructs_wide_matrix() {
        let mut rng = Pcg64::seed_from_u64(2);
        let a = gaussian_matrix(&mut rng, 8, 20);
        let f = householder_qr(&a);
        assert_eq!(f.q.shape(), (8, 8));
        assert_eq!(f.r.shape(), (8, 20));
        check_orthonormal(&f.q, 1e-12);
        assert!(relative_error(&a, &matmul(&f.q, &f.r)) < 1e-12);
    }

    #[test]
    fn qr_r_is_upper_triangular_with_nonneg_diag() {
        let mut rng = Pcg64::seed_from_u64(3);
        let a = gaussian_matrix(&mut rng, 15, 15);
        let f = householder_qr(&a);
        for i in 0..15 {
            assert!(f.r[(i, i)] >= 0.0);
            for j in 0..i {
                assert!(f.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_of_zero_matrix() {
        let a = Matrix::zeros(6, 4);
        let f = householder_qr(&a);
        assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-14));
    }

    #[test]
    fn orthonormalize_returns_orthonormal_basis() {
        let mut rng = Pcg64::seed_from_u64(4);
        let a = gaussian_matrix(&mut rng, 40, 10);
        let q = orthonormalize(&a);
        check_orthonormal(&q, 1e-12);
    }

    #[test]
    fn cpqr_detects_exact_low_rank() {
        let mut rng = Pcg64::seed_from_u64(5);
        let u = gaussian_matrix(&mut rng, 40, 5);
        let v = gaussian_matrix(&mut rng, 5, 30);
        let a = matmul(&u, &v); // rank 5 by construction
        let f = column_pivoted_qr(&a, 1e-10, 0);
        assert_eq!(f.rank, 5);
        check_orthonormal(&f.q, 1e-12);
        assert!(relative_error(&a, &f.reconstruct()) < 1e-10);
    }

    #[test]
    fn cpqr_full_rank_matrix() {
        let mut rng = Pcg64::seed_from_u64(6);
        let a = gaussian_matrix(&mut rng, 20, 20);
        let f = column_pivoted_qr(&a, 1e-14, 0);
        assert_eq!(f.rank, 20);
        assert!(relative_error(&a, &f.reconstruct()) < 1e-11);
    }

    #[test]
    fn cpqr_respects_max_rank_cap() {
        let mut rng = Pcg64::seed_from_u64(7);
        let a = gaussian_matrix(&mut rng, 30, 30);
        let f = column_pivoted_qr(&a, 0.0, 7);
        assert_eq!(f.rank, 7);
        assert_eq!(f.q.shape(), (30, 7));
        assert_eq!(f.r.shape(), (7, 30));
    }

    #[test]
    fn cpqr_pivot_diagonal_is_decreasing() {
        let mut rng = Pcg64::seed_from_u64(8);
        let a = gaussian_matrix(&mut rng, 25, 25);
        let f = column_pivoted_qr(&a, 1e-14, 0);
        for i in 1..f.rank {
            assert!(
                f.r[(i, i)].abs() <= f.r[(i - 1, i - 1)].abs() + 1e-10,
                "pivot magnitudes should be non-increasing"
            );
        }
    }

    #[test]
    fn cpqr_perm_is_a_permutation() {
        let mut rng = Pcg64::seed_from_u64(9);
        let a = gaussian_matrix(&mut rng, 10, 18);
        let f = column_pivoted_qr(&a, 1e-14, 0);
        let mut p = f.perm.clone();
        p.sort_unstable();
        assert_eq!(p, (0..18).collect::<Vec<_>>());
    }

    #[test]
    fn cpqr_zero_matrix_has_rank_zero() {
        let a = Matrix::zeros(12, 9);
        let f = column_pivoted_qr(&a, 1e-12, 0);
        assert_eq!(f.rank, 0);
    }

    #[test]
    fn full_qr_produces_square_orthogonal_q() {
        let mut rng = Pcg64::seed_from_u64(21);
        let a = gaussian_matrix(&mut rng, 14, 5);
        let (q, r) = full_qr(&a);
        assert_eq!(q.shape(), (14, 14));
        assert_eq!(r.shape(), (14, 5));
        let qtq = matmul_tn(&q, &q);
        assert!(relative_error(&Matrix::identity(14), &qtq) < 1e-12);
        assert!(relative_error(&a, &matmul(&q, &r)) < 1e-12);
        // R is upper trapezoidal.
        for j in 0..5 {
            for i in (j + 1)..14 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn full_qr_of_wide_and_empty() {
        let mut rng = Pcg64::seed_from_u64(22);
        let a = gaussian_matrix(&mut rng, 4, 9);
        let (q, r) = full_qr(&a);
        assert_eq!(q.shape(), (4, 4));
        assert!(relative_error(&a, &matmul(&q, &r)) < 1e-12);

        let e = Matrix::zeros(3, 0);
        let (q, r) = full_qr(&e);
        assert!(q.approx_eq(&Matrix::identity(3), 0.0));
        assert_eq!(r.shape(), (3, 0));
    }
}
