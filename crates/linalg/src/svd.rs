//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The paper's singular-value studies (Fig. 1, Table 1) and the truncated
//! low-rank compression need full accuracy on small-to-medium matrices; the
//! one-sided Jacobi algorithm is simple, unconditionally stable, and
//! computes small singular values to high relative accuracy.

use crate::blas;
use crate::matrix::Matrix;
use crate::{LinalgError, LinalgResult};

/// Full (thin) singular value decomposition `A = U diag(S) V^T`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m x k` with `k = min(m, n)`.
    pub u: Matrix,
    /// Singular values in non-increasing order, length `k`.
    pub s: Vec<f64>,
    /// Transposed right singular vectors, `k x n`.
    pub vt: Matrix,
}

impl Svd {
    /// Reconstructs `U diag(S) V^T`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.s.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.nrows() {
                us[(i, j)] *= self.s[j];
            }
        }
        blas::matmul(&us, &self.vt)
    }

    /// Numerical rank: number of singular values above `tol` (absolute).
    pub fn rank(&self, tol: f64) -> usize {
        self.s.iter().filter(|&&x| x > tol).count()
    }

    /// Numerical rank relative to the largest singular value.
    pub fn rank_relative(&self, rel_tol: f64) -> usize {
        if self.s.is_empty() {
            return 0;
        }
        let cutoff = rel_tol * self.s[0];
        self.s.iter().filter(|&&x| x > cutoff).count()
    }
}

const MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD.
///
/// Handles any rectangular shape (internally transposes when `m < n`).
/// Returns an error only if the sweeps fail to converge, which for the
/// tolerance used here does not happen for finite input.
pub fn svd(a: &Matrix) -> LinalgResult<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            vt: Matrix::zeros(0, n),
        });
    }
    if m < n {
        // A = U S V^T  <=>  A^T = V S U^T.
        let t = svd(&a.transpose())?;
        return Ok(Svd {
            u: t.vt.transpose(),
            s: t.s,
            vt: t.u.transpose(),
        });
    }

    // Work on columns of a copy of A; V accumulates the right rotations.
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let eps = 1e-14;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of the (p, q) column pair.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    alpha += wp * wp;
                    beta += wq * wq;
                    gamma += wp * wq;
                }
                off = off.max(gamma.abs() / (alpha.sqrt() * beta.sqrt() + f64::MIN_POSITIVE));
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                // Jacobi rotation that annihilates the (p, q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = c * wp - s * wq;
                    w[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < eps {
            converged = true;
            break;
        }
    }
    if !converged {
        // One-sided Jacobi converges in practice; treat exhaustion of the
        // sweep budget as failure rather than returning a wrong answer.
        return Err(LinalgError::NoConvergence {
            iterations: MAX_SWEEPS,
        });
    }

    // Singular values are the column norms of the rotated matrix.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|j| blas::nrm2(&w.col(j))).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut s = Vec::with_capacity(n);
    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    for (out_j, &j) in order.iter().enumerate() {
        let sigma = norms[j];
        s.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u[(i, out_j)] = w[(i, j)] / sigma;
            }
        } else {
            // Null column: any unit vector orthogonal to the others keeps U
            // well defined; use the canonical basis vector as a fallback.
            u[(out_j.min(m - 1), out_j)] = 1.0;
        }
        for i in 0..n {
            vt[(out_j, i)] = v[(i, j)];
        }
    }

    Ok(Svd { u, s, vt })
}

/// Convenience wrapper returning only the singular values (non-increasing).
pub fn singular_values(a: &Matrix) -> Vec<f64> {
    svd(a).map(|f| f.s).unwrap_or_default()
}

/// Effective rank used in Table 1 of the paper: the number of singular
/// values strictly greater than `threshold`.
pub fn effective_rank(a: &Matrix, threshold: f64) -> usize {
    singular_values(a)
        .iter()
        .filter(|&&x| x > threshold)
        .count()
}

/// Spectral norm (largest singular value) of the matrix.
pub fn spectral_norm(a: &Matrix) -> f64 {
    singular_values(a).first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, matmul_tn, relative_error};
    use crate::random::{gaussian_matrix, Pcg64};

    fn check_orthonormal_cols(q: &Matrix, tol: f64) {
        let qtq = matmul_tn(q, q);
        assert!(relative_error(&Matrix::identity(q.ncols()), &qtq) < tol);
    }

    #[test]
    fn svd_reconstructs_square() {
        let mut rng = Pcg64::seed_from_u64(1);
        let a = gaussian_matrix(&mut rng, 12, 12);
        let f = svd(&a).unwrap();
        assert!(relative_error(&a, &f.reconstruct()) < 1e-10);
        check_orthonormal_cols(&f.u, 1e-10);
        check_orthonormal_cols(&f.vt.transpose(), 1e-10);
    }

    #[test]
    fn svd_reconstructs_tall_and_wide() {
        let mut rng = Pcg64::seed_from_u64(2);
        let tall = gaussian_matrix(&mut rng, 25, 8);
        let f = svd(&tall).unwrap();
        assert_eq!(f.u.shape(), (25, 8));
        assert_eq!(f.s.len(), 8);
        assert_eq!(f.vt.shape(), (8, 8));
        assert!(relative_error(&tall, &f.reconstruct()) < 1e-10);

        let wide = gaussian_matrix(&mut rng, 6, 19);
        let f = svd(&wide).unwrap();
        assert_eq!(f.u.shape(), (6, 6));
        assert_eq!(f.s.len(), 6);
        assert_eq!(f.vt.shape(), (6, 19));
        assert!(relative_error(&wide, &f.reconstruct()) < 1e-10);
    }

    #[test]
    fn singular_values_are_sorted_and_nonnegative() {
        let mut rng = Pcg64::seed_from_u64(3);
        let a = gaussian_matrix(&mut rng, 15, 10);
        let s = singular_values(&a);
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_of_diagonal_matrix_recovers_diagonal() {
        let d = Matrix::from_diag(&[5.0, 3.0, 1.0, 0.5]);
        let s = singular_values(&d);
        assert!((s[0] - 5.0).abs() < 1e-12);
        assert!((s[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn svd_detects_exact_rank_deficiency() {
        let mut rng = Pcg64::seed_from_u64(4);
        let u = gaussian_matrix(&mut rng, 20, 3);
        let v = gaussian_matrix(&mut rng, 3, 20);
        let a = matmul(&u, &v);
        let f = svd(&a).unwrap();
        assert_eq!(f.rank_relative(1e-10), 3);
        assert!(f.s[3] < 1e-9 * f.s[0]);
    }

    #[test]
    fn effective_rank_matches_threshold_semantics() {
        let d = Matrix::from_diag(&[2.0, 0.5, 0.011, 0.009, 1e-8]);
        assert_eq!(effective_rank(&d, 0.01), 3);
        assert_eq!(effective_rank(&d, 1.0), 1);
    }

    #[test]
    fn spectral_norm_of_identity() {
        assert!((spectral_norm(&Matrix::identity(7)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_of_zero_and_empty() {
        let z = Matrix::zeros(4, 3);
        let f = svd(&z).unwrap();
        assert!(f.s.iter().all(|&x| x == 0.0));
        let e = Matrix::zeros(0, 5);
        let f = svd(&e).unwrap();
        assert!(f.s.is_empty());
    }

    #[test]
    fn svd_orthogonal_input_gives_unit_singular_values() {
        let mut rng = Pcg64::seed_from_u64(5);
        let a = gaussian_matrix(&mut rng, 16, 16);
        let q = crate::qr::householder_qr(&a).q;
        let s = singular_values(&q);
        for &x in &s {
            assert!((x - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn rank_absolute_and_relative_agree_on_scaled_identity() {
        let a = Matrix::identity(6).scaled(10.0);
        let f = svd(&a).unwrap();
        assert_eq!(f.rank(1.0), 6);
        assert_eq!(f.rank(10.5), 0);
        assert_eq!(f.rank_relative(0.5), 6);
    }
}
