//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! `K + λI` with a Gaussian kernel and `λ > 0` is symmetric positive
//! definite, so the *exact* (dense, non-compressed) baseline of Algorithm 1
//! uses Cholesky; the hierarchical solvers are validated against it.

use crate::matrix::Matrix;
use crate::triangular;
use crate::{LinalgError, LinalgResult};

/// Lower-triangular Cholesky factor `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// Computes the Cholesky factorization of a symmetric positive-definite
/// matrix.
///
/// Only the lower triangle of `a` is referenced.
///
/// # Errors
/// Returns [`LinalgError::NotPositiveDefinite`] if a non-positive pivot is
/// encountered, and [`LinalgError::DimensionMismatch`] for non-square input.
pub fn cholesky(a: &Matrix) -> LinalgResult<Cholesky> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            context: format!("cholesky on {}x{} matrix", a.nrows(), a.ncols()),
        });
    }
    let n = a.nrows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / djj;
        }
    }
    Ok(Cholesky { l })
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `A x = b` via forward and back substitution.
    pub fn solve(&self, b: &[f64]) -> LinalgResult<Vec<f64>> {
        let y = triangular::solve_lower(&self.l, b)?;
        triangular::solve_lower_transpose(&self.l, &y)
    }

    /// Solves `A X = B` for a matrix of right-hand sides via two in-place
    /// backend TRSMs (`L Y = B`, then `Lᵀ X = Y` as an upper solve on the
    /// materialized transpose).
    pub fn solve_multi(&self, b: &Matrix) -> LinalgResult<Matrix> {
        assert_eq!(b.nrows(), self.dim(), "Cholesky::solve_multi: dim mismatch");
        let be = crate::backend::active();
        let mut x = b.clone();
        be.trsm_lower_into(&self.l, &mut x)?;
        be.trsm_upper_into(&self.l.transpose(), &mut x)?;
        Ok(x)
    }

    /// Log-determinant of the original matrix (`2 Σ log L_ii`).
    pub fn log_determinant(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }

    /// Reconstructs `L L^T`.
    pub fn reconstruct(&self) -> Matrix {
        crate::blas::matmul_nt(&self.l, &self.l)
    }
}

/// Convenience one-shot SPD solve.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    cholesky(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemv, matmul, relative_error};
    use crate::random::{gaussian_matrix, Pcg64};

    fn random_spd(seed: u64, n: usize) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        let b = gaussian_matrix(&mut rng, n, n);
        let mut a = matmul(&b, &b.transpose());
        a.shift_diagonal(n as f64 * 0.1);
        a
    }

    #[test]
    fn factor_reconstructs_spd_matrix() {
        let a = random_spd(1, 20);
        let f = cholesky(&a).unwrap();
        assert!(relative_error(&a, &f.reconstruct()) < 1e-11);
    }

    #[test]
    fn factor_is_lower_triangular_with_positive_diag() {
        let a = random_spd(2, 10);
        let f = cholesky(&a).unwrap();
        for i in 0..10 {
            assert!(f.factor()[(i, i)] > 0.0);
            for j in (i + 1)..10 {
                assert_eq!(f.factor()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_residual_is_small() {
        let a = random_spd(3, 30);
        let mut rng = Pcg64::seed_from_u64(4);
        let x_true: Vec<f64> = (0..30).map(|_| rng.next_gaussian()).collect();
        let mut b = vec![0.0; 30];
        gemv(&a, &x_true, &mut b);
        let x = solve_spd(&a, &b).unwrap();
        let err: f64 = x
            .iter()
            .zip(x_true.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "max error {err}");
    }

    #[test]
    fn solve_multi_matches_single() {
        let a = random_spd(5, 12);
        let mut rng = Pcg64::seed_from_u64(6);
        let b = gaussian_matrix(&mut rng, 12, 3);
        let f = cholesky(&a).unwrap();
        let x = f.solve_multi(&b).unwrap();
        for j in 0..3 {
            let xj = f.solve(&b.col(j)).unwrap();
            for i in 0..12 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn log_determinant_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 4.0, 8.0]);
        let f = cholesky(&a).unwrap();
        assert!((f.log_determinant() - (2.0_f64 * 4.0 * 8.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = Matrix::from_diag(&[1.0, -1.0, 2.0]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rectangular_is_rejected() {
        assert!(matches!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn identity_factor_is_identity() {
        let f = cholesky(&Matrix::identity(5)).unwrap();
        assert!(f.factor().approx_eq(&Matrix::identity(5), 1e-15));
        assert_eq!(f.solve(&[1.0; 5]).unwrap(), vec![1.0; 5]);
    }
}
