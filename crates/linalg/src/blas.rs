//! BLAS-like dense kernels: level 1/2 helpers plus allocating level-3
//! wrappers over the active [`crate::backend::DenseBackend`].
//!
//! The level-3 entry points here ([`matmul`], [`matmul_tn`], [`matmul_nt`],
//! [`syrk`]) allocate their output and forward to the backend seam; hot
//! paths that can reuse buffers should call the `*_into` methods on
//! [`crate::backend::active`] directly.

use crate::backend;
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Below this many output elements the parallel GEMV kernel falls back to
/// the sequential path; spawning rayon tasks for tiny blocks costs more
/// than the multiply itself.
const PAR_THRESHOLD: usize = 64 * 64;

/// Dot product of two equally-long slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Euclidean norm of a slice.
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y += alpha * x` for slices.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place: `x *= alpha`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dense matrix-vector product `y = A x` (sequential core).
fn gemv_seq(a: &Matrix, x: &[f64], y: &mut [f64]) {
    for i in 0..a.nrows() {
        y[i] = dot(a.row(i), x);
    }
}

/// Dense matrix-vector product `y = A x`, parallel over rows of `A`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len(), "gemv: A.ncols != x.len");
    assert_eq!(a.nrows(), y.len(), "gemv: A.nrows != y.len");
    if a.nrows() * a.ncols() < PAR_THRESHOLD {
        gemv_seq(a, x, y);
        return;
    }
    y.par_iter_mut().enumerate().for_each(|(i, yi)| {
        *yi = dot(a.row(i), x);
    });
}

/// Dense transposed matrix-vector product `y = A^T x`.
pub fn gemv_t(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.nrows(), x.len(), "gemv_t: A.nrows != x.len");
    assert_eq!(a.ncols(), y.len(), "gemv_t: A.ncols != y.len");
    for yi in y.iter_mut() {
        *yi = 0.0;
    }
    for i in 0..a.nrows() {
        axpy(x[i], a.row(i), y);
    }
}

/// General matrix multiply `C = A * B` through the active backend.
///
/// Allocating wrapper over
/// [`DenseBackend::gemm_into`](crate::backend::DenseBackend::gemm_into).
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    backend::active().gemm_into(a, b, &mut c);
    c
}

/// `C = A^T * B` through the active backend.
///
/// Allocating wrapper over
/// [`DenseBackend::gemm_tn_into`](crate::backend::DenseBackend::gemm_tn_into).
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.ncols(), b.ncols());
    backend::active().gemm_tn_into(a, b, &mut c);
    c
}

/// `C = A * B^T` through the active backend.
///
/// Allocating wrapper over
/// [`DenseBackend::gemm_nt_into`](crate::backend::DenseBackend::gemm_nt_into).
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.nrows(), b.nrows());
    backend::active().gemm_nt_into(a, b, &mut c);
    c
}

/// Symmetric rank-k update `C = A * A^T` (returns the full symmetric
/// matrix) through the active backend.
///
/// Allocating wrapper over
/// [`DenseBackend::syrk_into`](crate::backend::DenseBackend::syrk_into).
pub fn syrk(a: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.nrows(), a.nrows());
    backend::active().syrk_into(a, &mut c);
    c
}

/// `y = alpha * A x + beta * y`.
pub fn gemv_full(alpha: f64, a: &Matrix, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len(), "gemv_full: A.ncols != x.len");
    assert_eq!(a.nrows(), y.len(), "gemv_full: A.nrows != y.len");
    for i in 0..a.nrows() {
        y[i] = alpha * dot(a.row(i), x) + beta * y[i];
    }
}

/// Computes the relative Frobenius-norm error `||A - B||_F / ||A||_F`.
///
/// Returns the absolute error when `||A||_F` is zero.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f64 {
    let diff = a.sub(b).norm_fro();
    let denom = a.norm_fro();
    if denom == 0.0 {
        diff
    } else {
        diff / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Pcg64;

    #[test]
    fn dot_axpy_nrm2() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut z = y.clone();
        axpy(2.0, &x, &mut z);
        assert_eq!(z, vec![6.0, 9.0, 12.0]);
        let mut w = x.clone();
        scal(0.5, &mut w);
        assert_eq!(w, vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![1.0, 0.0, -1.0];
        let mut y = vec![0.0; 2];
        gemv(&a, &x, &mut y);
        assert_eq!(y, vec![-2.0, -2.0]);
        let mut yt = vec![0.0; 3];
        gemv_t(&a, &[1.0, 1.0], &mut yt);
        assert_eq!(yt, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemv_full_alpha_beta() {
        let a = Matrix::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![1.0, 1.0, 1.0];
        gemv_full(2.0, &a, &x, -1.0, &mut y);
        assert_eq!(y, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert!(c.approx_eq(&Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]), 1e-14));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Pcg64::seed_from_u64(7);
        let a = crate::random::gaussian_matrix(&mut rng, 17, 23);
        let c = matmul(&a, &Matrix::identity(23));
        assert!(c.approx_eq(&a, 1e-13));
        let c2 = matmul(&Matrix::identity(17), &a);
        assert!(c2.approx_eq(&a, 1e-13));
    }

    #[test]
    fn matmul_routes_through_active_backend() {
        let mut rng = Pcg64::seed_from_u64(11);
        let a = crate::random::gaussian_matrix(&mut rng, 120, 90);
        let b = crate::random::gaussian_matrix(&mut rng, 90, 70);
        let c = matmul(&a, &b);
        let mut c_direct = Matrix::zeros(120, 70);
        crate::backend::active().gemm_into(&a, &b, &mut c_direct);
        assert_eq!(c.data(), c_direct.data());
    }

    #[test]
    fn transposed_products() {
        let mut rng = Pcg64::seed_from_u64(3);
        let a = crate::random::gaussian_matrix(&mut rng, 20, 15);
        let b = crate::random::gaussian_matrix(&mut rng, 20, 10);
        let c = matmul_tn(&a, &b);
        let c_ref = matmul(&a.transpose(), &b);
        assert!(relative_error(&c_ref, &c) < 1e-13);
        let d = matmul_nt(&a, &crate::random::gaussian_matrix(&mut rng, 8, 15));
        assert_eq!(d.shape(), (20, 8));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Pcg64::seed_from_u64(5);
        let a = crate::random::gaussian_matrix(&mut rng, 30, 12);
        let b = crate::random::gaussian_matrix(&mut rng, 25, 12);
        let c = matmul_nt(&a, &b);
        let c_ref = matmul(&a, &b.transpose());
        assert!(relative_error(&c_ref, &c) < 1e-13);
    }

    #[test]
    fn syrk_is_symmetric_and_correct() {
        let mut rng = Pcg64::seed_from_u64(9);
        let a = crate::random::gaussian_matrix(&mut rng, 10, 6);
        let c = syrk(&a);
        assert!(c.is_symmetric(1e-14));
        let c_ref = matmul(&a, &a.transpose());
        assert!(relative_error(&c_ref, &c) < 1e-13);
    }

    #[test]
    fn relative_error_zero_for_equal() {
        let a = Matrix::identity(4);
        assert_eq!(relative_error(&a, &a), 0.0);
        let z = Matrix::zeros(2, 2);
        assert_eq!(relative_error(&z, &z), 0.0);
    }

    #[test]
    #[should_panic]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
