//! AVX2+FMA backend: explicit `std::arch` microkernels under the shared
//! cache-blocking driver from [`super::blocked`].
//!
//! This is the only module in the workspace that uses `unsafe` (the
//! workspace denies `unsafe_code`; the allow below scopes the exception to
//! this file).  Safety rests on two invariants:
//!
//! * every `#[target_feature(enable = "avx2,fma")]` function is only
//!   reachable through [`Avx2Backend`], which the selection layer in
//!   [`super`] hands out only after `is_x86_feature_detected!` confirmed
//!   both features at runtime;
//! * all pointer arithmetic stays inside slices whose lengths the packing
//!   driver guarantees (micropanels are allocated at `kc * MR` /
//!   `kc * NR` and the accumulator tile at `MR * NR`), re-checked here with
//!   debug assertions.
#![allow(unsafe_code)]

use super::blocked::{gemm_blocked, sq_dists_rowpar, syrk_via_nt, MicroKernel, Src};
use super::{
    check_gemm, check_gemm_nt, check_gemm_tn, check_sq_dists, check_syrk, trsm_lower_rowsweep,
    trsm_upper_rowsweep, DenseBackend,
};
use crate::matrix::Matrix;
use crate::matrix_f32::MatrixF32;
use crate::LinalgResult;
use std::arch::x86_64::*;

pub(crate) static AVX2: Avx2Backend = Avx2Backend;

/// Cache-blocked [`DenseBackend`] with explicit AVX2+FMA microkernels.
///
/// Only handed out by the selection layer when the CPU reports `avx2` and
/// `fma` at runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx2Backend;

/// 4×8 register tile: 8 ymm accumulators (4 rows × 2 four-lane columns),
/// one broadcast register for A and two loads for B per k step.
#[derive(Clone, Copy)]
struct Avx2Kernel;

/// # Safety
/// Requires avx2+fma (guaranteed by the selection layer), `a_panel` to hold
/// `kc * 4` doubles, `b_panel` `kc * 8` and `acc` exactly 32.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_4x8(kc: usize, a_panel: *const f64, b_panel: *const f64, acc: *mut f64) {
    let mut c00 = _mm256_setzero_pd();
    let mut c01 = _mm256_setzero_pd();
    let mut c10 = _mm256_setzero_pd();
    let mut c11 = _mm256_setzero_pd();
    let mut c20 = _mm256_setzero_pd();
    let mut c21 = _mm256_setzero_pd();
    let mut c30 = _mm256_setzero_pd();
    let mut c31 = _mm256_setzero_pd();
    for k in 0..kc {
        let b0 = _mm256_loadu_pd(b_panel.add(k * 8));
        let b1 = _mm256_loadu_pd(b_panel.add(k * 8 + 4));
        let a = a_panel.add(k * 4);
        let a0 = _mm256_set1_pd(*a);
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a0, b1, c01);
        let a1 = _mm256_set1_pd(*a.add(1));
        c10 = _mm256_fmadd_pd(a1, b0, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        let a2 = _mm256_set1_pd(*a.add(2));
        c20 = _mm256_fmadd_pd(a2, b0, c20);
        c21 = _mm256_fmadd_pd(a2, b1, c21);
        let a3 = _mm256_set1_pd(*a.add(3));
        c30 = _mm256_fmadd_pd(a3, b0, c30);
        c31 = _mm256_fmadd_pd(a3, b1, c31);
    }
    for (r, (lo, hi)) in [(c00, c01), (c10, c11), (c20, c21), (c30, c31)]
        .into_iter()
        .enumerate()
    {
        let dst = acc.add(r * 8);
        _mm256_storeu_pd(dst, _mm256_add_pd(_mm256_loadu_pd(dst), lo));
        _mm256_storeu_pd(dst.add(4), _mm256_add_pd(_mm256_loadu_pd(dst.add(4)), hi));
    }
}

impl MicroKernel for Avx2Kernel {
    const MR: usize = 4;
    const NR: usize = 8;
    // FMA pays for the packing much sooner than the portable kernel does
    // (measured crossover between 32³ and 64³ on the dev container).
    const SMALL_WORK: usize = 1 << 16;

    #[inline(always)]
    fn accumulate(self, kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut [f64]) {
        debug_assert!(a_panel.len() >= kc * Self::MR);
        debug_assert!(b_panel.len() >= kc * Self::NR);
        debug_assert_eq!(acc.len(), Self::MR * Self::NR);
        // SAFETY: avx2+fma are verified before this backend is handed out,
        // and the slice lengths are asserted above.
        unsafe { micro_4x8(kc, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
    }
}

/// # Safety
/// Requires avx2+fma and `x.len() == y.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sq_distance_body(x: &[f64], y: &[f64]) -> f64 {
    let d = x.len();
    let chunks = d / 4;
    let mut acc = _mm256_setzero_pd();
    for c in 0..chunks {
        let xv = _mm256_loadu_pd(x.as_ptr().add(c * 4));
        let yv = _mm256_loadu_pd(y.as_ptr().add(c * 4));
        let diff = _mm256_sub_pd(xv, yv);
        acc = _mm256_fmadd_pd(diff, diff, acc);
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0;
    for i in chunks * 4..d {
        let diff = x[i] - y[i];
        tail += diff * diff;
    }
    // Same fixed lane-reduction order as the portable unrolled kernel.
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

fn sq_distance_avx2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sq_distance: length mismatch");
    if x.len() < 8 {
        return super::scalar::SCALAR.sq_distance(x, y);
    }
    // SAFETY: avx2+fma are verified before this backend is handed out.
    unsafe { sq_distance_body(x, y) }
}

// ---------------------------------------------------------------------------
// Single-precision microkernel for the mixed-precision factor store
// (`super::fp32`).  Same register-tile shape as the f64 kernel above, but a
// ymm now carries 8 f32 lanes, so one load covers the whole 8-wide tile row.
// ---------------------------------------------------------------------------

/// # Safety
/// Requires avx2+fma (guaranteed by the selection layer); each `a4[r]` must
/// be valid for `kdim` reads, `b` for `kdim * n` reads, each `c4[r]` for
/// writes in `[0, n8)`, and `n8 <= n` must be a multiple of 8.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_f32_4rows(
    kdim: usize,
    n: usize,
    n8: usize,
    a4: [*const f32; 4],
    b: *const f32,
    c4: [*mut f32; 4],
) {
    let mut j = 0;
    while j < n8 {
        let mut acc = [_mm256_setzero_ps(); 4];
        for k in 0..kdim {
            let bv = _mm256_loadu_ps(b.add(k * n + j));
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a4[r].add(k));
                *acc_r = _mm256_fmadd_ps(av, bv, *acc_r);
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            _mm256_storeu_ps(c4[r].add(j), *acc_r);
        }
        j += 8;
    }
}

/// AVX2 tile worker for the shared f32 GEMM driver
/// (`super::fp32::gemm_f32_driver`): computes `rcount ≤ 4` output rows
/// starting at global row `i0` into `rows` (`rcount × n`), SIMD on the
/// 4-row × 8-column interior and scalar ascending-`k` loops on the fringes.
pub(crate) fn gemm_f32_tile_rows_avx2(
    rows: &mut [f32],
    i0: usize,
    rcount: usize,
    a: &MatrixF32,
    b: &MatrixF32,
) {
    let n = b.ncols();
    let kdim = a.ncols();
    rows.fill(0.0);
    let n8 = n - n % 8;
    if rcount == 4 && n8 > 0 {
        debug_assert_eq!(rows.len(), 4 * n);
        let a4 = [
            a.row(i0).as_ptr(),
            a.row(i0 + 1).as_ptr(),
            a.row(i0 + 2).as_ptr(),
            a.row(i0 + 3).as_ptr(),
        ];
        // SAFETY: avx2+fma are verified before this backend is handed out;
        // the four destination rows are disjoint `n`-long stretches of
        // `rows` (asserted above) and the kernel writes only `[0, n8)`.
        unsafe {
            let base = rows.as_mut_ptr();
            let c4 = [base, base.add(n), base.add(2 * n), base.add(3 * n)];
            micro_f32_4rows(kdim, n, n8, a4, b.data().as_ptr(), c4);
        }
    }
    let j_start = if rcount == 4 { n8 } else { 0 };
    for r in 0..rcount {
        let a_row = a.row(i0 + r);
        for j in j_start..n {
            let mut s = 0.0f32;
            for (k, &aik) in a_row.iter().enumerate().take(kdim) {
                s += aik * b.data()[k * n + j];
            }
            rows[r * n + j] = s;
        }
    }
}

impl DenseBackend for Avx2Backend {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn gemm_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm(a, b, c);
        gemm_blocked(Avx2Kernel, Src::Normal(a), Src::Normal(b), c);
    }

    fn gemm_tn_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm_tn(a, b, c);
        gemm_blocked(Avx2Kernel, Src::Transposed(a), Src::Normal(b), c);
    }

    fn gemm_nt_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm_nt(a, b, c);
        gemm_blocked(Avx2Kernel, Src::Normal(a), Src::Transposed(b), c);
    }

    fn syrk_into(&self, a: &Matrix, c: &mut Matrix) {
        check_syrk(a, c);
        syrk_via_nt(Avx2Kernel, a, c);
    }

    fn trsm_lower_into(&self, l: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
        trsm_lower_rowsweep(l, b)
    }

    fn trsm_upper_into(&self, u: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
        trsm_upper_rowsweep(u, b)
    }

    fn sq_distance(&self, x: &[f64], y: &[f64]) -> f64 {
        sq_distance_avx2(x, y)
    }

    fn sq_dists_into(&self, x: &Matrix, y: &Matrix, out: &mut Matrix) {
        check_sq_dists(x, y, out);
        sq_dists_rowpar(x, y, out, sq_distance_avx2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::scalar::SCALAR;
    use crate::blas::relative_error;
    use crate::random::{gaussian_matrix, Pcg64};

    fn available() -> bool {
        super::super::avx2_supported()
    }

    #[test]
    fn avx2_gemm_matches_scalar_over_awkward_shapes() {
        if !available() {
            return;
        }
        let mut rng = Pcg64::seed_from_u64(53);
        for (m, k, n) in [(1, 7, 3), (16, 16, 16), (61, 300, 47), (128, 128, 200)] {
            let a = gaussian_matrix(&mut rng, m, k);
            let b = gaussian_matrix(&mut rng, k, n);
            let mut c = Matrix::zeros(m, n);
            AVX2.gemm_into(&a, &b, &mut c);
            let mut c_ref = Matrix::zeros(m, n);
            SCALAR.gemm_into(&a, &b, &mut c_ref);
            assert!(
                relative_error(&c_ref, &c) < 1e-13,
                "gemm mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn avx2_transpose_variants_and_syrk_match_scalar() {
        if !available() {
            return;
        }
        let mut rng = Pcg64::seed_from_u64(59);
        let a = gaussian_matrix(&mut rng, 90, 40);
        let b = gaussian_matrix(&mut rng, 90, 35);
        let mut c = Matrix::zeros(40, 35);
        AVX2.gemm_tn_into(&a, &b, &mut c);
        let mut c_ref = Matrix::zeros(40, 35);
        SCALAR.gemm_tn_into(&a, &b, &mut c_ref);
        assert!(relative_error(&c_ref, &c) < 1e-13);

        let mut s = Matrix::zeros(90, 90);
        AVX2.syrk_into(&a, &mut s);
        let mut s_ref = Matrix::zeros(90, 90);
        SCALAR.syrk_into(&a, &mut s_ref);
        assert!(relative_error(&s_ref, &s) < 1e-13);
        for i in 0..90 {
            for j in 0..90 {
                assert_eq!(s[(i, j)].to_bits(), s[(j, i)].to_bits());
            }
        }
    }

    #[test]
    fn avx2_distance_is_nonnegative_and_close_to_scalar() {
        if !available() {
            return;
        }
        let mut rng = Pcg64::seed_from_u64(61);
        for d in [1, 7, 8, 16, 18, 31] {
            let x: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
            let y: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
            let got = AVX2.sq_distance(&x, &y);
            let want = SCALAR.sq_distance(&x, &y);
            assert!(got >= 0.0);
            assert!((got - want).abs() <= 1e-12 * want.max(1.0));
            assert_eq!(AVX2.sq_distance(&x, &x), 0.0);
        }
    }
}
