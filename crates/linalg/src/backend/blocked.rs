//! Portable cache-blocked backend and the shared blocking driver.
//!
//! The driver follows the classic GotoBLAS/BLIS decomposition: the k
//! dimension is split into `KC`-deep panels sized for L2, B is packed once
//! per k-panel into `NR`-wide column micropanels, and each `MC`-row block of
//! A is packed into `MR`-tall row micropanels that stay hot in L1 while a
//! register-tiled `MR×NR` microkernel sweeps the packed panels.  The same
//! driver powers both the portable backend in this file (a scalar-unrolled
//! microkernel the autovectorizer handles well) and the AVX2 backend (an
//! explicit FMA microkernel).
//!
//! Determinism: each output element accumulates its k-panel contributions in
//! a fixed panel order, and the rayon split is over disjoint `MC`-row blocks
//! of C whose boundaries do not depend on the thread count — so results are
//! bitwise-identical for any number of threads.

use super::{
    check_gemm, check_gemm_nt, check_gemm_tn, check_sq_dists, check_syrk, trsm_lower_rowsweep,
    trsm_upper_rowsweep, DenseBackend,
};
use crate::matrix::Matrix;
use crate::LinalgResult;
use rayon::prelude::*;

/// k-panel depth; an `MR×KC` A-micropanel plus a `KC×NR` B-micropanel fit
/// comfortably in L1, and a full `MC×KC` A-block in L2.
const KC: usize = 256;
/// Rows of C per parallel task (and per packed A-block).
const MC: usize = 96;

pub(crate) static BLOCKED: BlockedBackend = BlockedBackend;

/// Portable cache-blocked [`DenseBackend`] (no architecture-specific code).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend;

/// How the packing routines read a source operand.
#[derive(Clone, Copy)]
pub(crate) enum Src<'a> {
    /// Element `(i, j)` is `m[(i, j)]`.
    Normal(&'a Matrix),
    /// Element `(i, j)` is `m[(j, i)]` — packs the transpose without
    /// materializing it.
    Transposed(&'a Matrix),
}

impl Src<'_> {
    #[inline(always)]
    fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Src::Normal(m) => m[(i, j)],
            Src::Transposed(m) => m[(j, i)],
        }
    }

    /// Logical number of rows of the operand this source represents.
    fn nrows(&self) -> usize {
        match self {
            Src::Normal(m) => m.nrows(),
            Src::Transposed(m) => m.ncols(),
        }
    }

    /// Logical number of columns of the operand this source represents.
    fn ncols(&self) -> usize {
        match self {
            Src::Normal(m) => m.ncols(),
            Src::Transposed(m) => m.nrows(),
        }
    }
}

/// An `MR×NR` register-tiled inner kernel over packed micropanels.
///
/// `accumulate` adds the `kc`-deep product of one A-micropanel
/// (`kc × MR`, k-major: element `(k, r)` at `k*MR + r`, zero-padded past the
/// valid rows) and one B-micropanel (`kc × NR`, k-major: element `(k, c)` at
/// `k*NR + c`, zero-padded past the valid columns) into a dense `MR×NR`
/// accumulator.
pub(crate) trait MicroKernel: Copy + Sync {
    /// Tile height (rows of C per microkernel call).
    const MR: usize;
    /// Tile width (columns of C per microkernel call).
    const NR: usize;
    /// Below this many multiply-adds the packing overhead outweighs this
    /// kernel's blocking win; [`gemm_blocked`] falls back to the plain
    /// sequential loops instead.  HSS construction issues very many tiny
    /// per-node products, so getting this threshold right matters more
    /// end-to-end than peak large-GEMM throughput.
    const SMALL_WORK: usize;

    /// `acc[r*NR + c] += Σ_k a_panel[k*MR + r] * b_panel[k*NR + c]`.
    fn accumulate(self, kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut [f64]);
}

/// Portable microkernel: 4×8 tile, plain array arithmetic the
/// autovectorizer turns into decent SIMD on any target.
#[derive(Clone, Copy)]
pub(crate) struct PortableKernel;

impl MicroKernel for PortableKernel {
    const MR: usize = 4;
    const NR: usize = 8;
    // The portable kernel only clearly beats the plain loops once the
    // working set falls out of L2 (measured crossover ≈ 100³ on the dev
    // container).
    const SMALL_WORK: usize = 1 << 20;

    #[inline(always)]
    fn accumulate(self, kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut [f64]) {
        const MR: usize = PortableKernel::MR;
        const NR: usize = PortableKernel::NR;
        let mut tile = [0.0f64; MR * NR];
        for k in 0..kc {
            let a = &a_panel[k * MR..k * MR + MR];
            let b = &b_panel[k * NR..k * NR + NR];
            for r in 0..MR {
                let ar = a[r];
                let row = &mut tile[r * NR..r * NR + NR];
                for c in 0..NR {
                    row[c] += ar * b[c];
                }
            }
        }
        for (av, tv) in acc.iter_mut().zip(tile.iter()) {
            *av += tv;
        }
    }
}

/// Packs the `kc`-deep, `n`-wide slab of `b` starting at row `k0` into
/// `width`-wide k-major micropanels, zero-padding the ragged last panel.
fn pack_b(b: &Src<'_>, k0: usize, kc: usize, n: usize, width: usize, out: &mut [f64]) {
    let panels = n.div_ceil(width);
    for p in 0..panels {
        let j0 = p * width;
        let nr = width.min(n - j0);
        let panel = &mut out[p * kc * width..(p + 1) * kc * width];
        for k in 0..kc {
            let dst = &mut panel[k * width..k * width + width];
            for (c, d) in dst.iter_mut().enumerate().take(nr) {
                *d = b.get(k0 + k, j0 + c);
            }
            for d in dst.iter_mut().skip(nr) {
                *d = 0.0;
            }
        }
    }
}

/// Packs the `mc`-tall, `kc`-deep block of `a` starting at `(i0, k0)` into
/// `height`-tall k-major micropanels, zero-padding the ragged last panel.
fn pack_a(a: &Src<'_>, i0: usize, k0: usize, mc: usize, kc: usize, height: usize, out: &mut [f64]) {
    let panels = mc.div_ceil(height);
    for p in 0..panels {
        let r0 = p * height;
        let mr = height.min(mc - r0);
        let panel = &mut out[p * kc * height..(p + 1) * kc * height];
        for k in 0..kc {
            let dst = &mut panel[k * height..k * height + height];
            for (r, d) in dst.iter_mut().enumerate().take(mr) {
                *d = a.get(i0 + r0 + r, k0 + k);
            }
            for d in dst.iter_mut().skip(mr) {
                *d = 0.0;
            }
        }
    }
}

/// Cache-blocked `C = A·B` over arbitrary (possibly transposed) sources.
///
/// `c` is fully overwritten.  Generic over the microkernel so the portable
/// and AVX2 backends share packing, blocking and the parallel split.
pub(crate) fn gemm_blocked<K: MicroKernel>(kernel: K, a: Src<'_>, b: Src<'_>, c: &mut Matrix) {
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    c.data_mut().fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k <= K::SMALL_WORK {
        gemm_small(a, b, c);
        return;
    }
    let mr = K::MR;
    let nr = K::NR;
    let n_panels = n.div_ceil(nr);
    let mut b_packed = vec![0.0f64; n_panels * KC * nr];
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_b(&b, k0, kc, n, nr, &mut b_packed[..n_panels * kc * nr]);
        let b_slab = &b_packed[..n_panels * kc * nr];
        let a_ref = &a;
        c.data_mut()
            .par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(blk, c_block)| {
                let i0 = blk * MC;
                let mc = MC.min(m - i0);
                let m_panels = mc.div_ceil(mr);
                let mut a_packed = vec![0.0f64; m_panels * kc * mr];
                pack_a(a_ref, i0, k0, mc, kc, mr, &mut a_packed);
                let mut acc = vec![0.0f64; mr * nr];
                for pi in 0..m_panels {
                    let r0 = pi * mr;
                    let rows = mr.min(mc - r0);
                    let a_panel = &a_packed[pi * kc * mr..(pi + 1) * kc * mr];
                    for pj in 0..n_panels {
                        let j0 = pj * nr;
                        let cols = nr.min(n - j0);
                        let b_panel = &b_slab[pj * kc * nr..(pj + 1) * kc * nr];
                        acc.fill(0.0);
                        kernel.accumulate(kc, a_panel, b_panel, &mut acc);
                        for r in 0..rows {
                            let crow = &mut c_block[(r0 + r) * n + j0..(r0 + r) * n + j0 + cols];
                            let arow = &acc[r * nr..r * nr + cols];
                            for (cv, av) in crow.iter_mut().zip(arow.iter()) {
                                *cv += av;
                            }
                        }
                    }
                }
            });
        k0 += kc;
    }
}

/// Plain sequential loops for products too small to amortize packing.
///
/// Each transpose combination gets its own slice-based loop: HSS
/// construction calls into here hundreds of thousands of times per train,
/// and a per-element `Src::get` enum match is ~8× slower than these loops
/// at 16³ shapes.  Every element still accumulates its k-contributions in
/// ascending-`l` order, so the result is deterministic; the NT arm computes
/// `C[i,j]` and `C[j,i]` as the identical dot when `b` aliases `a`, keeping
/// [`syrk_via_nt`] bitwise symmetric on this path too.
fn gemm_small(a: Src<'_>, b: Src<'_>, c: &mut Matrix) {
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    match (a, b) {
        (Src::Normal(am), Src::Normal(bm)) => {
            for i in 0..m {
                let arow = am.row(i);
                let crow = c.row_mut(i);
                for (l, &ail) in arow.iter().enumerate() {
                    if ail == 0.0 {
                        continue;
                    }
                    for (cj, &bj) in crow.iter_mut().zip(bm.row(l).iter()) {
                        *cj += ail * bj;
                    }
                }
            }
        }
        (Src::Transposed(am), Src::Normal(bm)) => {
            for l in 0..k {
                let arow = am.row(l);
                let brow = bm.row(l);
                for (i, &ail) in arow.iter().enumerate() {
                    if ail == 0.0 {
                        continue;
                    }
                    for (cj, &bj) in c.row_mut(i).iter_mut().zip(brow.iter()) {
                        *cj += ail * bj;
                    }
                }
            }
        }
        (Src::Normal(am), Src::Transposed(bm)) => {
            for i in 0..m {
                let arow = am.row(i);
                let crow = c.row_mut(i);
                for (j, cj) in crow.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for (&x, &y) in arow.iter().zip(bm.row(j).iter()) {
                        s += x * y;
                    }
                    *cj = s;
                }
            }
        }
        (a, b) => {
            // Transposed×Transposed: no backend entry point produces this
            // today; keep the generic element loop as a correct fallback.
            for i in 0..m {
                let crow = c.row_mut(i);
                for l in 0..k {
                    let ail = a.get(i, l);
                    for (j, cj) in crow.iter_mut().enumerate().take(n) {
                        *cj += ail * b.get(l, j);
                    }
                }
            }
        }
    }
}

/// `C = A·Aᵀ` through the NT product; both triangles come out of the same
/// packed panels, so `C[i,j]` and `C[j,i]` are the identical fp sum.
pub(crate) fn syrk_via_nt<K: MicroKernel>(kernel: K, a: &Matrix, c: &mut Matrix) {
    gemm_blocked(kernel, Src::Normal(a), Src::Transposed(a), c);
}

/// 4-lane unrolled squared distance with a fixed pairwise reduction order.
///
/// Vectorizable by the autovectorizer (independent accumulator lanes); used
/// whenever the point dimension is large enough to amortize the tail.
pub(crate) fn sq_distance_unrolled(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sq_distance: length mismatch");
    let d = x.len();
    if d < 8 {
        return super::scalar::SCALAR.sq_distance(x, y);
    }
    let mut acc = [0.0f64; 4];
    let chunks = d / 4;
    for c in 0..chunks {
        let xb = &x[c * 4..c * 4 + 4];
        let yb = &y[c * 4..c * 4 + 4];
        for l in 0..4 {
            let diff = xb[l] - yb[l];
            acc[l] += diff * diff;
        }
    }
    let mut tail = 0.0;
    for i in chunks * 4..d {
        let diff = x[i] - y[i];
        tail += diff * diff;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Row-parallel all-pairs squared distances over a per-pair kernel.
pub(crate) fn sq_dists_rowpar(
    x: &Matrix,
    y: &Matrix,
    out: &mut Matrix,
    pair: impl Fn(&[f64], &[f64]) -> f64 + Sync,
) {
    let n = y.nrows();
    if x.nrows() * n < super::scalar::PAR_THRESHOLD {
        for i in 0..x.nrows() {
            let xi = x.row(i);
            for (j, oj) in out.row_mut(i).iter_mut().enumerate() {
                *oj = pair(xi, y.row(j));
            }
        }
        return;
    }
    out.data_mut()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, row)| {
            let xi = x.row(i);
            for (j, oj) in row.iter_mut().enumerate() {
                *oj = pair(xi, y.row(j));
            }
        });
}

impl DenseBackend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm(a, b, c);
        gemm_blocked(PortableKernel, Src::Normal(a), Src::Normal(b), c);
    }

    fn gemm_tn_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm_tn(a, b, c);
        gemm_blocked(PortableKernel, Src::Transposed(a), Src::Normal(b), c);
    }

    fn gemm_nt_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm_nt(a, b, c);
        gemm_blocked(PortableKernel, Src::Normal(a), Src::Transposed(b), c);
    }

    fn syrk_into(&self, a: &Matrix, c: &mut Matrix) {
        check_syrk(a, c);
        syrk_via_nt(PortableKernel, a, c);
    }

    fn trsm_lower_into(&self, l: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
        trsm_lower_rowsweep(l, b)
    }

    fn trsm_upper_into(&self, u: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
        trsm_upper_rowsweep(u, b)
    }

    fn sq_distance(&self, x: &[f64], y: &[f64]) -> f64 {
        sq_distance_unrolled(x, y)
    }

    fn sq_dists_into(&self, x: &Matrix, y: &Matrix, out: &mut Matrix) {
        check_sq_dists(x, y, out);
        sq_dists_rowpar(x, y, out, sq_distance_unrolled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::scalar::SCALAR;
    use crate::blas::relative_error;
    use crate::random::{gaussian_matrix, Pcg64};

    fn ref_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.nrows(), b.ncols());
        SCALAR.gemm_into(a, b, &mut c);
        c
    }

    #[test]
    fn blocked_gemm_matches_scalar_over_awkward_shapes() {
        let mut rng = Pcg64::seed_from_u64(23);
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 8, 8),
            (17, 33, 29),
            (96, 96, 96),
            (97, 259, 101),
            (130, 70, 260),
        ] {
            let a = gaussian_matrix(&mut rng, m, k);
            let b = gaussian_matrix(&mut rng, k, n);
            let mut c = Matrix::zeros(m, n);
            BLOCKED.gemm_into(&a, &b, &mut c);
            let c_ref = ref_gemm(&a, &b);
            assert!(
                relative_error(&c_ref, &c) < 1e-13,
                "gemm mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_transpose_variants_match_scalar() {
        let mut rng = Pcg64::seed_from_u64(29);
        let a = gaussian_matrix(&mut rng, 70, 45);
        let b = gaussian_matrix(&mut rng, 70, 31);
        let mut c = Matrix::zeros(45, 31);
        BLOCKED.gemm_tn_into(&a, &b, &mut c);
        let c_ref = ref_gemm(&a.transpose(), &b);
        assert!(relative_error(&c_ref, &c) < 1e-13);

        let b2 = gaussian_matrix(&mut rng, 52, 45);
        let mut d = Matrix::zeros(70, 52);
        BLOCKED.gemm_nt_into(&a, &b2, &mut d);
        let d_ref = ref_gemm(&a, &b2.transpose());
        assert!(relative_error(&d_ref, &d) < 1e-13);
    }

    #[test]
    fn blocked_syrk_is_bitwise_symmetric() {
        let mut rng = Pcg64::seed_from_u64(31);
        let a = gaussian_matrix(&mut rng, 37, 150);
        let mut c = Matrix::zeros(37, 37);
        BLOCKED.syrk_into(&a, &mut c);
        for i in 0..37 {
            for j in 0..37 {
                assert_eq!(c[(i, j)].to_bits(), c[(j, i)].to_bits());
            }
        }
        let c_ref = ref_gemm(&a, &a.transpose());
        assert!(relative_error(&c_ref, &c) < 1e-13);
    }

    #[test]
    fn blocked_gemm_is_deterministic_across_thread_counts() {
        let mut rng = Pcg64::seed_from_u64(37);
        let a = gaussian_matrix(&mut rng, 210, 140);
        let b = gaussian_matrix(&mut rng, 140, 190);
        let mut c1 = Matrix::zeros(210, 190);
        let mut c2 = Matrix::zeros(210, 190);
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| BLOCKED.gemm_into(&a, &b, &mut c1));
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| BLOCKED.gemm_into(&a, &b, &mut c2));
        assert_eq!(c1.data(), c2.data());
    }

    #[test]
    fn unrolled_distance_matches_scalar_closely() {
        let mut rng = Pcg64::seed_from_u64(41);
        for d in [1, 4, 8, 16, 18, 33] {
            let x: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
            let y: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
            let got = sq_distance_unrolled(&x, &y);
            let want = SCALAR.sq_distance(&x, &y);
            assert!(got >= 0.0);
            assert!((got - want).abs() <= 1e-12 * want.max(1.0));
        }
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        BLOCKED.gemm_into(&a, &b, &mut c);
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_fn(4, 3, |_, _| 7.0);
        BLOCKED.gemm_into(&a, &b, &mut c);
        // k = 0 must still overwrite the output with zeros.
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
