//! Single-precision sibling of the [`DenseBackend`](super::DenseBackend)
//! seam — the kernels the mixed-precision factor-apply path needs.
//!
//! The f64 trait stayed `f64`-only by design (its module docs promised an
//! f32 factor store would "slot in without touching call sites"); this is
//! that slot. [`DenseBackendF32`] carries exactly the operations the ULV
//! apply path and its tests use — GEMM, GEMV in both orientations,
//! triangular solves — plus the mixed-precision GEMVs where
//! single-precision factors meet the double-precision PCG vectors: the
//! `f32 → f64` accumulating variant and the widened `gemv_f64` /
//! `gemv_t_f64` pair (f32 storage, all arithmetic in f64) that keep the
//! factor-apply an exact linear operator.
//!
//! Three implementations mirror the f64 seam and are selected by the *same*
//! `HKRR_DENSE_BACKEND` choice (see [`super::active_kind`]): a scalar
//! reference, a portable register-tiled kernel, and an AVX2+FMA kernel
//! (8 f32 lanes per ymm — twice the width of the f64 microkernel, on half
//! the memory traffic). Only `gemm_into` differs between them: the GEMV and
//! TRSM paths share one scalar implementation, so the ULV f32 *solve* is
//! bitwise identical across backends at any thread count, and only the
//! (test-exercised) level-3 products are merely accuracy-bounded.

use super::BackendKind;
use crate::matrix_f32::MatrixF32;
use crate::{LinalgError, LinalgResult};
use rayon::prelude::*;

/// In-place single-precision dense kernels for the factor-apply path.
///
/// All `*_into` methods **overwrite** their output argument; dimension
/// mismatches panic, matching the f64 seam's contract.
pub trait DenseBackendF32: Send + Sync {
    /// Short stable name (`"scalar"`, `"blocked"`, `"avx2"`).
    fn name(&self) -> &'static str;

    /// `C = A · B` with `A` being `m×k`, `B` `k×n` and `C` `m×n`, all f32.
    fn gemm_into(&self, a: &MatrixF32, b: &MatrixF32, c: &mut MatrixF32);

    /// Matrix-vector product `y = A x` in f32.
    ///
    /// Shared scalar implementation (ascending-`j` dot per row): bitwise
    /// identical across backends.
    fn gemv(&self, a: &MatrixF32, x: &[f32], y: &mut [f32]) {
        check_gemv_f32(a, x, y);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot_f32(a.row(i), x);
        }
    }

    /// Transposed matrix-vector product `y = Aᵀ x` in f32.
    ///
    /// Shared scalar implementation (zero, then ascending-row axpy):
    /// bitwise identical across backends.
    fn gemv_t(&self, a: &MatrixF32, x: &[f32], y: &mut [f32]) {
        assert_eq!(a.nrows(), x.len(), "gemv_t f32: A.nrows != x.len");
        assert_eq!(a.ncols(), y.len(), "gemv_t f32: A.ncols != y.len");
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        for i in 0..a.nrows() {
            let xi = x[i];
            for (yj, aij) in y.iter_mut().zip(a.row(i).iter()) {
                *yj += xi * aij;
            }
        }
    }

    /// Mixed-precision boundary product `y = A x`: each term is formed in
    /// f32 (one rounding — the factors and vector *are* f32) but the sum
    /// accumulates in f64, so a long row cannot lose low bits twice.
    ///
    /// This is the kernel at the seam where the f32 factor store hands its
    /// result back to the f64 PCG vectors.
    fn gemv_into_f64(&self, a: &MatrixF32, x: &[f32], y: &mut [f64]) {
        assert_eq!(a.ncols(), x.len(), "gemv f32→f64: A.ncols != x.len");
        assert_eq!(a.nrows(), y.len(), "gemv f32→f64: A.nrows != y.len");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0f64;
            for (aij, xj) in a.row(i).iter().zip(x.iter()) {
                s += (aij * xj) as f64;
            }
            *yi = s;
        }
    }

    /// Widened product `y = A x`: f32-*stored* matrix, f64 vectors, every
    /// operation in f64 (each `a_ij` is widened in registers).
    ///
    /// This is the kernel the mixed-precision ULV apply is built from: the
    /// factors pay only their one storage rounding, so the whole sweep is
    /// an exact *linear* f64 operator — exactly what CG's recurrences
    /// assume of a preconditioner. (Carrying the sweep vectors in f32
    /// instead makes the apply nonlinear at the 1e-7 level, which costs
    /// several times more Krylov iterations.)
    ///
    /// Shared scalar implementation (ascending-`j` dot per row): bitwise
    /// identical across backends.
    fn gemv_f64(&self, a: &MatrixF32, x: &[f64], y: &mut [f64]) {
        assert_eq!(a.ncols(), x.len(), "gemv f32/f64: A.ncols != x.len");
        assert_eq!(a.nrows(), y.len(), "gemv f32/f64: A.nrows != y.len");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0f64;
            for (aij, xj) in a.row(i).iter().zip(x.iter()) {
                s += *aij as f64 * xj;
            }
            *yi = s;
        }
    }

    /// Widened transposed product `y = Aᵀ x` — see
    /// [`DenseBackendF32::gemv_f64`].
    ///
    /// Shared scalar implementation (zero, then ascending-row axpy):
    /// bitwise identical across backends.
    fn gemv_t_f64(&self, a: &MatrixF32, x: &[f64], y: &mut [f64]) {
        assert_eq!(a.nrows(), x.len(), "gemv_t f32/f64: A.nrows != x.len");
        assert_eq!(a.ncols(), y.len(), "gemv_t f32/f64: A.ncols != y.len");
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        for i in 0..a.nrows() {
            let xi = x[i];
            for (yj, aij) in y.iter_mut().zip(a.row(i).iter()) {
                *yj += xi * *aij as f64;
            }
        }
    }

    /// In-place forward substitution `B ← L⁻¹ B` for lower-triangular `L`.
    ///
    /// Shared scalar row sweep; returns
    /// [`LinalgError::Singular`] on a zero diagonal entry.
    fn trsm_lower_into(&self, l: &MatrixF32, b: &mut MatrixF32) -> LinalgResult<()> {
        trsm_lower_rowsweep_f32(l, b)
    }

    /// In-place backward substitution `B ← U⁻¹ B` for upper-triangular `U`.
    ///
    /// Shared scalar row sweep; returns
    /// [`LinalgError::Singular`] on a zero diagonal entry.
    fn trsm_upper_into(&self, u: &MatrixF32, b: &mut MatrixF32) -> LinalgResult<()> {
        trsm_upper_rowsweep_f32(u, b)
    }
}

/// f32 dot product with ascending-index accumulation (the reference order).
pub(crate) fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut s = 0.0f32;
    for (a, b) in x.iter().zip(y.iter()) {
        s += a * b;
    }
    s
}

fn check_gemv_f32(a: &MatrixF32, x: &[f32], y: &[f32]) {
    assert_eq!(a.ncols(), x.len(), "gemv f32: A.ncols != x.len");
    assert_eq!(a.nrows(), y.len(), "gemv f32: A.nrows != y.len");
}

pub(crate) fn check_gemm_f32(a: &MatrixF32, b: &MatrixF32, c: &MatrixF32) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "gemm f32: inner dimensions do not match ({}x{} * {}x{})",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    assert_eq!(
        (c.nrows(), c.ncols()),
        (a.nrows(), b.ncols()),
        "gemm f32: output shape mismatch"
    );
}

fn check_trsm_f32(t: &MatrixF32, b: &MatrixF32) {
    assert_eq!(
        t.nrows(),
        t.ncols(),
        "trsm f32: triangular factor must be square"
    );
    assert_eq!(t.nrows(), b.nrows(), "trsm f32: dim mismatch");
}

/// Shared f32 row-sweep forward substitution (same operation sequence as
/// the f64 [`super::trsm_lower_rowsweep`], in single precision).
pub(crate) fn trsm_lower_rowsweep_f32(l: &MatrixF32, b: &mut MatrixF32) -> LinalgResult<()> {
    check_trsm_f32(l, b);
    let n = l.nrows();
    let r = b.ncols();
    for i in 0..n {
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        for j in 0..i {
            let lij = l[(i, j)];
            let (done, rest) = b.data_mut().split_at_mut(i * r);
            let bj = &done[j * r..(j + 1) * r];
            let bi = &mut rest[..r];
            for (bic, bjc) in bi.iter_mut().zip(bj.iter()) {
                *bic -= lij * bjc;
            }
        }
        for v in b.row_mut(i) {
            *v /= d;
        }
    }
    Ok(())
}

/// Shared f32 row-sweep backward substitution (see
/// [`trsm_lower_rowsweep_f32`]).
pub(crate) fn trsm_upper_rowsweep_f32(u: &MatrixF32, b: &mut MatrixF32) -> LinalgResult<()> {
    check_trsm_f32(u, b);
    let n = u.nrows();
    let r = b.ncols();
    for i in (0..n).rev() {
        let d = u[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        for j in (i + 1)..n {
            let uij = u[(i, j)];
            let (head, tail) = b.data_mut().split_at_mut(j * r);
            let bi = &mut head[i * r..(i + 1) * r];
            let bj = &tail[..r];
            for (bic, bjc) in bi.iter_mut().zip(bj.iter()) {
                *bic -= uij * bjc;
            }
        }
        for v in b.row_mut(i) {
            *v /= d;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scalar reference.
// ---------------------------------------------------------------------------

pub(crate) static SCALAR_F32: ScalarBackendF32 = ScalarBackendF32;

/// Reference f32 backend: straightforward loops, ascending-`k`
/// accumulation. The accuracy baseline the other f32 backends are tested
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackendF32;

/// Sequential i-k-j GEMM with ascending-`k` accumulation per output
/// element (the reference order the tiled kernels reproduce blockwise).
fn gemm_f32_seq(a: &MatrixF32, b: &MatrixF32, c: &mut MatrixF32) {
    let n = b.ncols();
    let kdim = a.ncols();
    c.data_mut().fill(0.0);
    for i in 0..a.nrows() {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (k, &aik) in a_row.iter().enumerate().take(kdim) {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b.data()[k * n..(k + 1) * n];
            for (cj, bj) in c_row.iter_mut().zip(b_row.iter()) {
                *cj += aik * bj;
            }
        }
    }
}

impl DenseBackendF32 for ScalarBackendF32 {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_into(&self, a: &MatrixF32, b: &MatrixF32, c: &mut MatrixF32) {
        check_gemm_f32(a, b, c);
        gemm_f32_seq(a, b, c);
    }
}

// ---------------------------------------------------------------------------
// Portable register-tiled backend.
// ---------------------------------------------------------------------------

pub(crate) static BLOCKED_F32: BlockedBackendF32 = BlockedBackendF32;

/// Portable tiled f32 backend: 4×8 register tiles, rows parallel in
/// 4-row chunks (each chunk's arithmetic is independent, so results are
/// bitwise deterministic at any thread count).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackendF32;

/// Below this many `m·k·n` flops the tiled kernel stays sequential.
const SMALL_WORK_F32: usize = 1 << 18;

/// Register tile width (f32 lanes the autovectorizer can map to one ymm).
const NR_F32: usize = 8;
/// Register tile height.
const MR_F32: usize = 4;

/// Computes `rcount ≤ MR_F32` output rows (starting at global row `i0`)
/// into `rows` (`rcount × n`, row-major), with 4×8 register tiling on the
/// full-tile interior and scalar ascending-`k` loops on the fringes.
fn gemm_f32_tile_rows(rows: &mut [f32], i0: usize, rcount: usize, a: &MatrixF32, b: &MatrixF32) {
    let n = b.ncols();
    let kdim = a.ncols();
    rows.fill(0.0);
    let n8 = n - n % NR_F32;
    if rcount == MR_F32 {
        let mut j = 0;
        while j < n8 {
            let mut acc = [[0.0f32; NR_F32]; MR_F32];
            for k in 0..kdim {
                let mut bb = [0.0f32; NR_F32];
                bb.copy_from_slice(&b.data()[k * n + j..k * n + j + NR_F32]);
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let av = a[(i0 + r, k)];
                    for (al, bl) in acc_r.iter_mut().zip(bb.iter()) {
                        *al += av * bl;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                rows[r * n + j..r * n + j + NR_F32].copy_from_slice(acc_r);
            }
            j += NR_F32;
        }
    }
    let j_start = if rcount == MR_F32 { n8 } else { 0 };
    for r in 0..rcount {
        let a_row = a.row(i0 + r);
        for j in j_start..n {
            let mut s = 0.0f32;
            for (k, &aik) in a_row.iter().enumerate().take(kdim) {
                s += aik * b.data()[k * n + j];
            }
            rows[r * n + j] = s;
        }
    }
}

/// Tiled GEMM driver shared by the portable and AVX2 f32 backends: splits
/// `C` into `MR_F32`-row chunks, computed independently (sequentially below
/// [`SMALL_WORK_F32`], in parallel above it).
pub(crate) fn gemm_f32_driver<F>(a: &MatrixF32, b: &MatrixF32, c: &mut MatrixF32, tile: F)
where
    F: Fn(&mut [f32], usize, usize, &MatrixF32, &MatrixF32) + Sync,
{
    let (m, n) = c.shape();
    let work = m * n * a.ncols();
    if work < SMALL_WORK_F32 {
        for i0 in (0..m).step_by(MR_F32) {
            let rcount = MR_F32.min(m - i0);
            tile(
                &mut c.data_mut()[i0 * n..(i0 + rcount) * n],
                i0,
                rcount,
                a,
                b,
            );
        }
        return;
    }
    c.data_mut()
        .par_chunks_mut(MR_F32 * n)
        .enumerate()
        .for_each(|(chunk, rows)| {
            let i0 = chunk * MR_F32;
            let rcount = rows.len() / n;
            tile(rows, i0, rcount, a, b);
        });
}

impl DenseBackendF32 for BlockedBackendF32 {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm_into(&self, a: &MatrixF32, b: &MatrixF32, c: &mut MatrixF32) {
        check_gemm_f32(a, b, c);
        gemm_f32_driver(a, b, c, gemm_f32_tile_rows);
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend (microkernel lives in `super::avx2`, the one unsafe file).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) static AVX2_F32: Avx2BackendF32 = Avx2BackendF32;

/// AVX2+FMA f32 backend: 8-lane `_mm256_*_ps` microkernel (see
/// `backend::avx2`), only handed out when the CPU reports `avx2`+`fma`.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx2BackendF32;

#[cfg(target_arch = "x86_64")]
impl DenseBackendF32 for Avx2BackendF32 {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn gemm_into(&self, a: &MatrixF32, b: &MatrixF32, c: &mut MatrixF32) {
        check_gemm_f32(a, b, c);
        gemm_f32_driver(a, b, c, super::avx2::gemm_f32_tile_rows_avx2);
    }
}

/// The f32 backend matching the active f64 backend choice: one
/// `HKRR_DENSE_BACKEND` knob governs both precisions, so a pinned `scalar`
/// run stays scalar on the f32 side too.
pub fn active_f32() -> &'static dyn DenseBackendF32 {
    match super::active_kind() {
        BackendKind::Scalar => &SCALAR_F32,
        BackendKind::Blocked => &BLOCKED_F32,
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => &AVX2_F32,
        #[cfg(not(target_arch = "x86_64"))]
        BackendKind::Avx2 => unreachable!("avx2 is never selected off x86_64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Pcg64;

    fn gaussian_f32(rng: &mut Pcg64, m: usize, n: usize) -> MatrixF32 {
        MatrixF32::from_vec(
            m,
            n,
            (0..m * n).map(|_| rng.next_gaussian() as f32).collect(),
        )
    }

    fn max_abs_diff(a: &MatrixF32, b: &MatrixF32) -> f32 {
        a.data()
            .iter()
            .zip(b.data().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    fn f32_backends() -> Vec<&'static dyn DenseBackendF32> {
        let mut v: Vec<&'static dyn DenseBackendF32> = vec![&SCALAR_F32, &BLOCKED_F32];
        #[cfg(target_arch = "x86_64")]
        if super::super::avx2_supported() {
            v.push(&AVX2_F32);
        }
        v
    }

    #[test]
    fn every_f32_backend_multiplies_close_to_scalar() {
        let mut rng = Pcg64::seed_from_u64(101);
        for (m, k, n) in [(1, 5, 3), (4, 8, 8), (13, 70, 11), (65, 90, 129)] {
            let a = gaussian_f32(&mut rng, m, k);
            let b = gaussian_f32(&mut rng, k, n);
            let mut c_ref = MatrixF32::zeros(m, n);
            SCALAR_F32.gemm_into(&a, &b, &mut c_ref);
            for be in f32_backends() {
                let mut c = MatrixF32::zeros(m, n);
                be.gemm_into(&a, &b, &mut c);
                let diff = max_abs_diff(&c_ref, &c);
                assert!(
                    diff < 1e-3 * (k as f32).sqrt(),
                    "{} gemm diverges from scalar at {m}x{k}x{n}: {diff}",
                    be.name()
                );
            }
        }
    }

    #[test]
    fn f32_gemm_matches_f64_gemm_to_single_precision() {
        let mut rng = Pcg64::seed_from_u64(103);
        let a64 = crate::random::gaussian_matrix(&mut rng, 40, 60);
        let b64 = crate::random::gaussian_matrix(&mut rng, 60, 30);
        let mut c64 = crate::matrix::Matrix::zeros(40, 30);
        super::super::active().gemm_into(&a64, &b64, &mut c64);
        let a32 = MatrixF32::from_f64(&a64);
        let b32 = MatrixF32::from_f64(&b64);
        for be in f32_backends() {
            let mut c32 = MatrixF32::zeros(40, 30);
            be.gemm_into(&a32, &b32, &mut c32);
            for (x64, x32) in c64.data().iter().zip(c32.data().iter()) {
                assert!(
                    (x64 - *x32 as f64).abs() < 1e-3,
                    "{}: f32 {x32} vs f64 {x64}",
                    be.name()
                );
            }
        }
    }

    #[test]
    fn gemv_variants_are_bitwise_shared_across_backends() {
        let mut rng = Pcg64::seed_from_u64(107);
        let a = gaussian_f32(&mut rng, 23, 17);
        let x: Vec<f32> = (0..17).map(|_| rng.next_gaussian() as f32).collect();
        let xt: Vec<f32> = (0..23).map(|_| rng.next_gaussian() as f32).collect();
        let mut y_ref = vec![0.0f32; 23];
        SCALAR_F32.gemv(&a, &x, &mut y_ref);
        let mut yt_ref = vec![0.0f32; 17];
        SCALAR_F32.gemv_t(&a, &xt, &mut yt_ref);
        for be in f32_backends() {
            let mut y = vec![0.0f32; 23];
            be.gemv(&a, &x, &mut y);
            assert_eq!(y, y_ref, "{} gemv must be bitwise shared", be.name());
            let mut yt = vec![0.0f32; 17];
            be.gemv_t(&a, &xt, &mut yt);
            assert_eq!(yt, yt_ref, "{} gemv_t must be bitwise shared", be.name());
        }
    }

    #[test]
    fn gemv_into_f64_accumulates_in_double() {
        // A row long enough that pure-f32 accumulation visibly drifts:
        // summing n copies of x where x has low bits set.
        let n = 40_000;
        let a = MatrixF32::from_vec(1, n, vec![1.0f32; n]);
        let x = vec![1.0f32 + f32::EPSILON; n];
        let mut y = vec![0.0f64; 1];
        SCALAR_F32.gemv_into_f64(&a, &x, &mut y);
        let exact = n as f64 * (1.0f32 + f32::EPSILON) as f64;
        assert!(
            (y[0] - exact).abs() < 1e-6,
            "f64-accumulated {} vs exact {exact}",
            y[0]
        );
        // Pure f32 accumulation loses the epsilons entirely at this length.
        let mut y32 = vec![0.0f32; 1];
        SCALAR_F32.gemv(&a, &x, &mut y32);
        assert!((y32[0] as f64 - exact).abs() > (y[0] - exact).abs());
    }

    #[test]
    fn widened_gemv_matches_f64_on_exactly_representable_data() {
        // Integer-valued entries are exact in both precisions, so the
        // widened kernels must reproduce the f64 reference bitwise.
        let mut rng = Pcg64::seed_from_u64(113);
        let m = 13;
        let n = 9;
        let data: Vec<f64> = (0..m * n)
            .map(|_| (rng.next_gaussian() * 4.0).round())
            .collect();
        let a64 = crate::matrix::Matrix::from_vec(m, n, data);
        let a32 = MatrixF32::from_f64(&a64);
        let x: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let xt: Vec<f64> = (0..m).map(|_| rng.next_gaussian()).collect();
        let mut y_ref = vec![0.0f64; m];
        crate::blas::gemv(&a64, &x, &mut y_ref);
        let mut yt_ref = vec![0.0f64; n];
        crate::blas::gemv_t(&a64, &xt, &mut yt_ref);
        for be in f32_backends() {
            let mut y = vec![0.0f64; m];
            be.gemv_f64(&a32, &x, &mut y);
            assert_eq!(y, y_ref, "{} gemv_f64", be.name());
            let mut yt = vec![0.0f64; n];
            be.gemv_t_f64(&a32, &xt, &mut yt);
            assert_eq!(yt, yt_ref, "{} gemv_t_f64", be.name());
        }
    }

    #[test]
    fn trsm_f32_solves_and_reports_singularity() {
        let mut rng = Pcg64::seed_from_u64(109);
        let n = 9;
        let mut l = MatrixF32::zeros(n, n);
        let mut u = MatrixF32::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let g = rng.next_gaussian() as f32;
                if j < i {
                    l[(i, j)] = g;
                } else if j > i {
                    u[(i, j)] = g;
                }
            }
            l[(i, i)] = 2.0 + (rng.next_gaussian() as f32).abs();
            u[(i, i)] = 2.0 + (rng.next_gaussian() as f32).abs();
        }
        let b = gaussian_f32(&mut rng, n, 3);
        let mut x = b.clone();
        SCALAR_F32.trsm_lower_into(&l, &mut x).unwrap();
        let mut lx = MatrixF32::zeros(n, 3);
        SCALAR_F32.gemm_into(&l, &x, &mut lx);
        assert!(max_abs_diff(&b, &lx) < 1e-4);
        let mut y = b.clone();
        SCALAR_F32.trsm_upper_into(&u, &mut y).unwrap();
        let mut uy = MatrixF32::zeros(n, 3);
        SCALAR_F32.gemm_into(&u, &y, &mut uy);
        assert!(max_abs_diff(&b, &uy) < 1e-4);

        let mut sing = MatrixF32::zeros(3, 3);
        sing[(0, 0)] = 1.0;
        sing[(2, 2)] = 1.0;
        let mut rhs = MatrixF32::zeros(3, 1);
        assert!(matches!(
            SCALAR_F32.trsm_lower_into(&sing, &mut rhs),
            Err(LinalgError::Singular { pivot: 1 })
        ));
    }

    #[test]
    fn active_f32_tracks_the_f64_backend_choice() {
        assert_eq!(active_f32().name(), super::super::active().name());
    }
}
