//! Pluggable dense-math backends behind a single dispatch seam.
//!
//! Every level-3 dense kernel in the workspace (GEMM in its three transpose
//! variants, SYRK, triangular multi-solves) and the squared-distance kernels
//! that feed kernel assembly, clustering and serve-time routing go through
//! the [`DenseBackend`] trait.  Three implementations ship today:
//!
//! * [`BackendKind::Scalar`] — the reference implementation.  Bit-for-bit
//!   the arithmetic the workspace had before the backend seam existed; the
//!   bitwise-reproducibility suites pin against it.
//! * [`BackendKind::Blocked`] — portable cache-blocked kernels (packed
//!   micropanels, register tiling) with no architecture-specific code.
//! * [`BackendKind::Avx2`] — the same blocking with explicit AVX2+FMA
//!   microkernels via `std::arch`, selected only when the CPU reports the
//!   features at runtime.
//!
//! # Selection
//!
//! The active backend is chosen once, lazily, from the `HKRR_DENSE_BACKEND`
//! environment variable (`scalar`, `blocked`, `avx2` or `auto`); unset or
//! `auto` picks the fastest available implementation for the host.  Benches
//! and tests may override the choice at runtime with [`set_active`].
//!
//! # Contract
//!
//! Results are *deterministic within a backend*: the same inputs on the same
//! backend produce bitwise-identical outputs regardless of thread count.
//! Across backends results are only *accuracy-bounded* against
//! [`BackendKind::Scalar`] (SIMD and blocking reorder floating-point sums),
//! which the cross-backend proptest suite enforces componentwise.
//!
//! The trait takes `&self` and plain `f64` buffers; the mixed-precision
//! factor store plugs in as the sibling seam [`fp32::DenseBackendF32`]
//! (selected by the *same* `HKRR_DENSE_BACKEND` choice via
//! [`fp32::active_f32`]) rather than by widening this trait.

use crate::matrix::Matrix;
use crate::LinalgResult;
use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
mod avx2;
mod blocked;
pub mod fp32;
mod scalar;

#[cfg(target_arch = "x86_64")]
pub use avx2::Avx2Backend;
pub use blocked::BlockedBackend;
#[cfg(target_arch = "x86_64")]
pub use fp32::Avx2BackendF32;
pub use fp32::{active_f32, BlockedBackendF32, DenseBackendF32, ScalarBackendF32};
pub use scalar::ScalarBackend;

/// In-place dense kernels every backend must provide.
///
/// All `*_into` methods **overwrite** their output argument (they do not
/// accumulate), so callers can reuse buffers across calls without clearing
/// them.  Dimension mismatches panic, matching the historical free-function
/// behaviour in [`crate::blas`].
pub trait DenseBackend: Send + Sync {
    /// Short stable name of the backend (`"scalar"`, `"blocked"`, `"avx2"`).
    fn name(&self) -> &'static str;

    /// `C = A · B` with `A` being `m×k`, `B` `k×n` and `C` `m×n`.
    fn gemm_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix);

    /// `C = Aᵀ · B` with `A` being `k×m`, `B` `k×n` and `C` `m×n`.
    fn gemm_tn_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix);

    /// `C = A · Bᵀ` with `A` being `m×k`, `B` `n×k` and `C` `m×n`.
    fn gemm_nt_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix);

    /// Symmetric product `C = A · Aᵀ` with `A` being `m×k` and `C` `m×m`.
    ///
    /// The result is exactly symmetric: `C[i,j]` and `C[j,i]` are the same
    /// floating-point value.
    fn syrk_into(&self, a: &Matrix, c: &mut Matrix);

    /// In-place forward substitution `B ← L⁻¹ B` for lower-triangular `L`.
    ///
    /// Only the lower triangle (diagonal included) of `l` is read.  Returns
    /// [`crate::LinalgError::Singular`] on a zero diagonal entry; `b` is
    /// left partially updated in that case.
    fn trsm_lower_into(&self, l: &Matrix, b: &mut Matrix) -> LinalgResult<()>;

    /// In-place backward substitution `B ← U⁻¹ B` for upper-triangular `U`.
    ///
    /// Only the upper triangle (diagonal included) of `u` is read.  Returns
    /// [`crate::LinalgError::Singular`] on a zero diagonal entry; `b` is
    /// left partially updated in that case.
    fn trsm_upper_into(&self, u: &Matrix, b: &mut Matrix) -> LinalgResult<()>;

    /// Squared Euclidean distance between two equally-long points.
    ///
    /// Always evaluated as `Σ (xᵢ-yᵢ)²` (never the expanded
    /// `‖x‖²+‖y‖²−2x·y` form), so the result is non-negative under any
    /// summation order — kernel evaluations downstream rely on that.
    fn sq_distance(&self, x: &[f64], y: &[f64]) -> f64;

    /// All-pairs squared distances: `out[i,j] = ‖x_i − y_j‖²` for the rows
    /// of `x` (`m×d`) and `y` (`n×d`), with `out` being `m×n`.
    fn sq_dists_into(&self, x: &Matrix, y: &Matrix, out: &mut Matrix) {
        check_sq_dists(x, y, out);
        let n = y.nrows();
        let y_ref = y;
        out.data_mut()
            .chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| {
                let xi = x.row(i);
                for (j, oj) in row.iter_mut().enumerate() {
                    *oj = self.sq_distance(xi, y_ref.row(j));
                }
            });
    }

    /// Squared distances from every row of `points` (`m×d`) to one point:
    /// `out[i] = ‖p_i − center‖²`.
    fn dists_to_point_into(&self, points: &Matrix, center: &[f64], out: &mut [f64]) {
        check_dists_to_point(points, center, out);
        for (i, oi) in out.iter_mut().enumerate() {
            *oi = self.sq_distance(points.row(i), center);
        }
    }
}

/// Identifies one of the shipped [`DenseBackend`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Reference implementation with the pre-seam arithmetic (bitwise pinned).
    Scalar,
    /// Portable cache-blocked kernels, no architecture-specific code.
    Blocked,
    /// Cache-blocked kernels with explicit AVX2+FMA microkernels.
    Avx2,
}

impl BackendKind {
    /// Stable lowercase name, matching the `HKRR_DENSE_BACKEND` values.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Blocked => "blocked",
            BackendKind::Avx2 => "avx2",
        }
    }

    /// Parses a `HKRR_DENSE_BACKEND`-style name (case-insensitive).
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "blocked" => Some(BackendKind::Blocked),
            "avx2" => Some(BackendKind::Avx2),
            _ => None,
        }
    }

    /// Whether this backend can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            BackendKind::Scalar | BackendKind::Blocked => true,
            BackendKind::Avx2 => avx2_supported(),
        }
    }

    /// The shared instance backing this kind.
    ///
    /// # Panics
    /// Panics if the backend is not available on this host (see
    /// [`BackendKind::is_available`]).
    pub fn instance(self) -> &'static dyn DenseBackend {
        match self {
            BackendKind::Scalar => &scalar::SCALAR,
            BackendKind::Blocked => &blocked::BLOCKED,
            BackendKind::Avx2 => avx2_instance(),
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            BackendKind::Scalar => 1,
            BackendKind::Blocked => 2,
            BackendKind::Avx2 => 3,
        }
    }

    fn from_u8(v: u8) -> Option<BackendKind> {
        match v {
            1 => Some(BackendKind::Scalar),
            2 => Some(BackendKind::Blocked),
            3 => Some(BackendKind::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_supported() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn avx2_instance() -> &'static dyn DenseBackend {
    assert!(
        avx2_supported(),
        "avx2 backend requested but the CPU does not report avx2+fma"
    );
    &avx2::AVX2
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_instance() -> &'static dyn DenseBackend {
    panic!("avx2 backend requested on a non-x86_64 target")
}

/// 0 = not yet chosen; otherwise `BackendKind::to_u8`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The backends usable on this host, scalar first.
pub fn available_backends() -> Vec<BackendKind> {
    [BackendKind::Scalar, BackendKind::Blocked, BackendKind::Avx2]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

/// Picks the default backend: `HKRR_DENSE_BACKEND` if set, otherwise the
/// fastest implementation the host supports.
///
/// # Panics
/// Panics if `HKRR_DENSE_BACKEND` names an unknown or unavailable backend —
/// a misspelt override should fail loudly, not silently fall back.
fn default_kind() -> BackendKind {
    match std::env::var("HKRR_DENSE_BACKEND") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => {
            let kind = BackendKind::parse(&v).unwrap_or_else(|| {
                panic!("HKRR_DENSE_BACKEND={v:?}: expected scalar, blocked, avx2 or auto")
            });
            assert!(
                kind.is_available(),
                "HKRR_DENSE_BACKEND={v:?}: backend not available on this host"
            );
            kind
        }
        _ => {
            if avx2_supported() {
                BackendKind::Avx2
            } else {
                BackendKind::Blocked
            }
        }
    }
}

/// Kind of the active backend, initializing it on first use.
pub fn active_kind() -> BackendKind {
    match BackendKind::from_u8(ACTIVE.load(Ordering::Acquire)) {
        Some(kind) => kind,
        None => {
            let kind = default_kind();
            // A concurrent first call may race; both compute the same
            // default, so whichever store wins is equivalent.
            ACTIVE.store(kind.to_u8(), Ordering::Release);
            kind
        }
    }
}

/// The active [`DenseBackend`], initializing it on first use.
///
/// This is the single dispatch seam: every dense level-3 product and
/// distance kernel in the workspace routes through the instance returned
/// here.
pub fn active() -> &'static dyn DenseBackend {
    active_kind().instance()
}

/// Alias for [`active`] under the name downstream crates import
/// (`hkrr_linalg::dense_backend()`).
pub fn dense_backend() -> &'static dyn DenseBackend {
    active()
}

/// Overrides the active backend (benches and cross-backend tests).
///
/// Returns an error if the backend is not available on this host.  Calls
/// running concurrently in other threads observe the switch on their next
/// [`active`] lookup, so tests that switch backends must not run in
/// parallel with work that assumes a pinned backend.
pub fn set_active(kind: BackendKind) -> Result<(), String> {
    if !kind.is_available() {
        return Err(format!("backend {kind} not available on this host"));
    }
    ACTIVE.store(kind.to_u8(), Ordering::Release);
    Ok(())
}

// ---------------------------------------------------------------------------
// Shared dimension checks (one panic message per operation, all backends).
// ---------------------------------------------------------------------------

pub(crate) fn check_gemm(a: &Matrix, b: &Matrix, c: &Matrix) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "gemm: inner dimensions do not match ({}x{} * {}x{})",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    assert_eq!(
        (c.nrows(), c.ncols()),
        (a.nrows(), b.ncols()),
        "gemm: output shape mismatch"
    );
}

pub(crate) fn check_gemm_tn(a: &Matrix, b: &Matrix, c: &Matrix) {
    assert_eq!(a.nrows(), b.nrows(), "gemm_tn: row mismatch");
    assert_eq!(
        (c.nrows(), c.ncols()),
        (a.ncols(), b.ncols()),
        "gemm_tn: output shape mismatch"
    );
}

pub(crate) fn check_gemm_nt(a: &Matrix, b: &Matrix, c: &Matrix) {
    assert_eq!(a.ncols(), b.ncols(), "gemm_nt: col mismatch");
    assert_eq!(
        (c.nrows(), c.ncols()),
        (a.nrows(), b.nrows()),
        "gemm_nt: output shape mismatch"
    );
}

pub(crate) fn check_syrk(a: &Matrix, c: &Matrix) {
    assert_eq!(
        (c.nrows(), c.ncols()),
        (a.nrows(), a.nrows()),
        "syrk: output shape mismatch"
    );
}

pub(crate) fn check_trsm(t: &Matrix, b: &Matrix) {
    assert_eq!(
        t.nrows(),
        t.ncols(),
        "trsm: triangular factor must be square"
    );
    assert_eq!(t.nrows(), b.nrows(), "trsm: dim mismatch");
}

pub(crate) fn check_sq_dists(x: &Matrix, y: &Matrix, out: &Matrix) {
    assert_eq!(x.ncols(), y.ncols(), "sq_dists: point dimension mismatch");
    assert_eq!(
        (out.nrows(), out.ncols()),
        (x.nrows(), y.nrows()),
        "sq_dists: output shape mismatch"
    );
}

pub(crate) fn check_dists_to_point(points: &Matrix, center: &[f64], out: &[f64]) {
    assert_eq!(
        points.ncols(),
        center.len(),
        "dists_to_point: point dimension mismatch"
    );
    assert_eq!(
        points.nrows(),
        out.len(),
        "dists_to_point: output length mismatch"
    );
}

/// Shared row-sweep forward substitution `B ← L⁻¹ B`.
///
/// Element-for-element this performs the same scalar operation sequence as
/// solving column by column (each `b[i][c]` receives the subtractions in
/// ascending `j` order, then one divide), so every backend that uses it —
/// including vectorized ones, which only batch the independent per-column
/// ops — produces bitwise-identical results.
pub(crate) fn trsm_lower_rowsweep(l: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
    check_trsm(l, b);
    let n = l.nrows();
    let r = b.ncols();
    for i in 0..n {
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(crate::LinalgError::Singular { pivot: i });
        }
        for j in 0..i {
            let lij = l[(i, j)];
            let (done, rest) = b.data_mut().split_at_mut(i * r);
            let bj = &done[j * r..(j + 1) * r];
            let bi = &mut rest[..r];
            for (bic, bjc) in bi.iter_mut().zip(bj.iter()) {
                *bic -= lij * bjc;
            }
        }
        for v in b.row_mut(i) {
            *v /= d;
        }
    }
    Ok(())
}

/// Shared row-sweep backward substitution `B ← U⁻¹ B` (see
/// [`trsm_lower_rowsweep`] for the determinism argument).
pub(crate) fn trsm_upper_rowsweep(u: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
    check_trsm(u, b);
    let n = u.nrows();
    let r = b.ncols();
    for i in (0..n).rev() {
        let d = u[(i, i)];
        if d == 0.0 {
            return Err(crate::LinalgError::Singular { pivot: i });
        }
        for j in (i + 1)..n {
            let uij = u[(i, j)];
            let (head, tail) = b.data_mut().split_at_mut(j * r);
            let bi = &mut head[i * r..(i + 1) * r];
            let bj = &tail[..r];
            for (bic, bjc) in bi.iter_mut().zip(bj.iter()) {
                *bic -= uij * bjc;
            }
        }
        for v in b.row_mut(i) {
            *v /= d;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, Pcg64};

    #[test]
    fn kind_roundtrip_and_parse() {
        for kind in [BackendKind::Scalar, BackendKind::Blocked, BackendKind::Avx2] {
            assert_eq!(BackendKind::parse(kind.as_str()), Some(kind));
            assert_eq!(BackendKind::from_u8(kind.to_u8()), Some(kind));
        }
        assert_eq!(BackendKind::parse("AVX2"), Some(BackendKind::Avx2));
        assert_eq!(BackendKind::parse("mmx"), None);
    }

    #[test]
    fn scalar_and_blocked_always_available() {
        let avail = available_backends();
        assert!(avail.contains(&BackendKind::Scalar));
        assert!(avail.contains(&BackendKind::Blocked));
    }

    #[test]
    fn active_backend_is_available() {
        let kind = active_kind();
        assert!(kind.is_available());
        assert_eq!(active().name(), kind.as_str());
    }

    #[test]
    fn every_backend_multiplies_correctly() {
        let mut rng = Pcg64::seed_from_u64(17);
        let a = gaussian_matrix(&mut rng, 13, 9);
        let b = gaussian_matrix(&mut rng, 9, 11);
        let reference = BackendKind::Scalar.instance();
        let mut c_ref = Matrix::zeros(13, 11);
        reference.gemm_into(&a, &b, &mut c_ref);
        for kind in available_backends() {
            let mut c = Matrix::zeros(13, 11);
            kind.instance().gemm_into(&a, &b, &mut c);
            assert!(
                crate::blas::relative_error(&c_ref, &c) < 1e-13,
                "backend {kind} disagrees with scalar"
            );
        }
    }

    #[test]
    fn trsm_rowsweep_solves_lower_and_upper() {
        let n = 8;
        let mut rng = Pcg64::seed_from_u64(5);
        let g = gaussian_matrix(&mut rng, n, n);
        let mut l = Matrix::zeros(n, n);
        let mut u = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if j < i {
                    l[(i, j)] = g[(i, j)];
                } else if j > i {
                    u[(i, j)] = g[(i, j)];
                }
            }
            l[(i, i)] = 2.0 + g[(i, i)].abs();
            u[(i, i)] = 2.0 + g[(i, i)].abs();
        }
        let b = gaussian_matrix(&mut rng, n, 5);
        let mut x = b.clone();
        trsm_lower_rowsweep(&l, &mut x).unwrap();
        let mut lx = Matrix::zeros(n, 5);
        BackendKind::Scalar.instance().gemm_into(&l, &x, &mut lx);
        assert!(crate::blas::relative_error(&b, &lx) < 1e-12);
        let mut y = b.clone();
        trsm_upper_rowsweep(&u, &mut y).unwrap();
        let mut uy = Matrix::zeros(n, 5);
        BackendKind::Scalar.instance().gemm_into(&u, &y, &mut uy);
        assert!(crate::blas::relative_error(&b, &uy) < 1e-12);
    }

    #[test]
    fn trsm_reports_singularity() {
        let mut l = Matrix::identity(3);
        l[(1, 1)] = 0.0;
        let mut b = Matrix::zeros(3, 2);
        assert!(matches!(
            trsm_lower_rowsweep(&l, &mut b),
            Err(crate::LinalgError::Singular { pivot: 1 })
        ));
    }
}
