//! Reference backend: the pre-seam arithmetic, moved verbatim.
//!
//! The loops in this file are the exact kernels `crate::blas` shipped before
//! the [`DenseBackend`](super::DenseBackend) seam existed — same loop order,
//! same zero-skip, same rayon row split — so every bitwise-reproducibility
//! suite that pinned the old free functions keeps passing when pinned
//! against this backend.

use super::{
    check_gemm, check_gemm_nt, check_gemm_tn, check_sq_dists, check_syrk, trsm_lower_rowsweep,
    trsm_upper_rowsweep, DenseBackend,
};
use crate::matrix::Matrix;
use crate::LinalgResult;
use rayon::prelude::*;

/// Below this many output elements the parallel kernels fall back to the
/// sequential path; spawning rayon tasks for tiny blocks costs more than the
/// multiply itself.  (Moved verbatim from `crate::blas`.)
pub(crate) const PAR_THRESHOLD: usize = 64 * 64;

pub(crate) static SCALAR: ScalarBackend = ScalarBackend;

/// The reference [`DenseBackend`]: plain triple loops, bitwise-stable.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

/// Sequential i-k-j GEMM core (streams rows of B, friendly to row-major
/// storage).  Accumulates into `c`, which the caller has zeroed.
pub(crate) fn matmul_into_seq(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.ncols();
    for i in 0..m {
        for l in 0..k {
            let ail = a[(i, l)];
            if ail == 0.0 {
                continue;
            }
            let brow = b.row(l);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += ail * brow[j];
            }
        }
    }
}

impl DenseBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm(a, b, c);
        let (m, k) = a.shape();
        let n = b.ncols();
        c.data_mut().fill(0.0);
        let work = m * n * k;
        if work < PAR_THRESHOLD * 8 {
            matmul_into_seq(a, b, c);
            return;
        }
        let b_data = b.data();
        c.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, crow)| {
                let arow = a.row(i);
                for (l, &ail) in arow.iter().enumerate() {
                    if ail == 0.0 {
                        continue;
                    }
                    let brow = &b_data[l * n..(l + 1) * n];
                    for (cj, bj) in crow.iter_mut().zip(brow.iter()) {
                        *cj += ail * bj;
                    }
                }
            });
    }

    fn gemm_tn_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm_tn(a, b, c);
        // Transposing A is O(mk) while the multiply is O(mkn); the copy is
        // cheap and lets us reuse the row-parallel kernel.
        self.gemm_into(&a.transpose(), b, c);
    }

    fn gemm_nt_into(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        check_gemm_nt(a, b, c);
        let (m, k) = a.shape();
        let n = b.nrows();
        let work = m * n * k;
        if work < PAR_THRESHOLD * 8 {
            for i in 0..m {
                for j in 0..n {
                    c[(i, j)] = crate::blas::dot(a.row(i), b.row(j));
                }
            }
            return;
        }
        c.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, crow)| {
                let arow = a.row(i);
                for (j, cj) in crow.iter_mut().enumerate() {
                    *cj = crate::blas::dot(arow, b.row(j));
                }
            });
    }

    fn syrk_into(&self, a: &Matrix, c: &mut Matrix) {
        check_syrk(a, c);
        let m = a.nrows();
        for i in 0..m {
            for j in i..m {
                let v = crate::blas::dot(a.row(i), a.row(j));
                c[(i, j)] = v;
                c[(j, i)] = v;
            }
        }
    }

    fn trsm_lower_into(&self, l: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
        trsm_lower_rowsweep(l, b)
    }

    fn trsm_upper_into(&self, u: &Matrix, b: &mut Matrix) -> LinalgResult<()> {
        trsm_upper_rowsweep(u, b)
    }

    fn sq_distance(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "sq_distance: length mismatch");
        x.iter()
            .zip(y.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    fn sq_dists_into(&self, x: &Matrix, y: &Matrix, out: &mut Matrix) {
        check_sq_dists(x, y, out);
        let n = y.nrows();
        if x.nrows() * n < PAR_THRESHOLD {
            for i in 0..x.nrows() {
                let xi = x.row(i);
                let row = out.row_mut(i);
                for (j, oj) in row.iter_mut().enumerate() {
                    *oj = self.sq_distance(xi, y.row(j));
                }
            }
            return;
        }
        out.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| {
                let xi = x.row(i);
                for (j, oj) in row.iter_mut().enumerate() {
                    *oj = self.sq_distance(xi, y.row(j));
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, Pcg64};

    #[test]
    fn parallel_gemm_matches_sequential_core() {
        let mut rng = Pcg64::seed_from_u64(11);
        let a = gaussian_matrix(&mut rng, 120, 90);
        let b = gaussian_matrix(&mut rng, 90, 70);
        let mut c_par = Matrix::zeros(120, 70);
        SCALAR.gemm_into(&a, &b, &mut c_par);
        let mut c_seq = Matrix::zeros(120, 70);
        matmul_into_seq(&a, &b, &mut c_seq);
        assert!(crate::blas::relative_error(&c_seq, &c_par) < 1e-13);
    }

    #[test]
    fn gemm_into_overwrites_stale_output() {
        let a = Matrix::identity(4);
        let b = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let mut c = Matrix::from_fn(4, 4, |_, _| 99.0);
        SCALAR.gemm_into(&a, &b, &mut c);
        assert!(c.approx_eq(&b, 0.0));
    }

    #[test]
    fn syrk_matches_gemm_nt() {
        let mut rng = Pcg64::seed_from_u64(9);
        let a = gaussian_matrix(&mut rng, 10, 6);
        let mut c = Matrix::zeros(10, 10);
        SCALAR.syrk_into(&a, &mut c);
        let mut c_ref = Matrix::zeros(10, 10);
        SCALAR.gemm_nt_into(&a, &a, &mut c_ref);
        assert!(crate::blas::relative_error(&c_ref, &c) < 1e-13);
        assert!(c.is_symmetric(1e-14));
    }

    #[test]
    fn sq_distance_matches_definition() {
        assert_eq!(SCALAR.sq_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
