//! Low-rank factors `U V^T` and compression helpers.
//!
//! Both hierarchical formats store their off-diagonal blocks as products of
//! two skinny matrices; this module provides the container plus the
//! SVD-based and rank-revealing-QR-based truncation routines that turn a
//! dense block into such a product at a requested tolerance.

use crate::blas;
use crate::matrix::Matrix;
use crate::qr::column_pivoted_qr;
use crate::svd::svd;

/// A rank-`k` factorization `A ≈ U V^T` with `U` of size `m x k` and `V`
/// of size `n x k`.
#[derive(Debug, Clone)]
pub struct LowRank {
    /// Left factor (`m x k`).
    pub u: Matrix,
    /// Right factor (`n x k`); the block is `U V^T`.
    pub v: Matrix,
}

impl LowRank {
    /// Builds a low-rank pair from the two factors.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn new(u: Matrix, v: Matrix) -> Self {
        assert_eq!(u.ncols(), v.ncols(), "LowRank::new: rank mismatch");
        LowRank { u, v }
    }

    /// Rank of the factorization (number of columns of `U`).
    pub fn rank(&self) -> usize {
        self.u.ncols()
    }

    /// Number of rows of the represented block.
    pub fn nrows(&self) -> usize {
        self.u.nrows()
    }

    /// Number of columns of the represented block.
    pub fn ncols(&self) -> usize {
        self.v.nrows()
    }

    /// An exactly-zero block of the given shape (rank 0).
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        LowRank {
            u: Matrix::zeros(nrows, 0),
            v: Matrix::zeros(ncols, 0),
        }
    }

    /// Expands the factorization into a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.nrows(), self.ncols());
        self.to_dense_into(&mut out);
        out
    }

    /// Expands the factorization into a caller-provided buffer (`m x n`),
    /// overwriting it, through the active backend's in-place NT product.
    pub fn to_dense_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.nrows(), out.ncols()),
            (self.nrows(), self.ncols()),
            "LowRank::to_dense_into: output shape mismatch"
        );
        if self.rank() == 0 {
            out.data_mut().fill(0.0);
            return;
        }
        crate::backend::active().gemm_nt_into(&self.u, &self.v, out);
    }

    /// `y = (U V^T) x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols(), "LowRank::matvec: x length");
        assert_eq!(y.len(), self.nrows(), "LowRank::matvec: y length");
        if self.rank() == 0 {
            for yi in y.iter_mut() {
                *yi = 0.0;
            }
            return;
        }
        let mut t = vec![0.0; self.rank()];
        blas::gemv_t(&self.v, x, &mut t); // t = V^T x
        blas::gemv(&self.u, &t, y);
    }

    /// `y += alpha * (U V^T) x`.
    pub fn matvec_add(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        if self.rank() == 0 {
            return;
        }
        let mut t = vec![0.0; self.rank()];
        blas::gemv_t(&self.v, x, &mut t); // t = V^T x
        let mut z = vec![0.0; self.nrows()];
        blas::gemv(&self.u, &t, &mut z);
        blas::axpy(alpha, &z, y);
    }

    /// `y += alpha * (U V^T)^T x = alpha * V (U^T x)`.
    pub fn rmatvec_add(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        if self.rank() == 0 {
            return;
        }
        let mut t = vec![0.0; self.rank()];
        blas::gemv_t(&self.u, x, &mut t); // t = U^T x
        let mut z = vec![0.0; self.ncols()];
        blas::gemv(&self.v, &t, &mut z);
        blas::axpy(alpha, &z, y);
    }

    /// Memory footprint of the two factors in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.u.memory_bytes() + self.v.memory_bytes()
    }

    /// Recompresses the factorization to the requested tolerance, which can
    /// reduce the rank after additions or concatenations.
    pub fn recompress(&self, tol: f64, max_rank: usize) -> LowRank {
        if self.rank() == 0 {
            return self.clone();
        }
        compress_svd(&self.to_dense(), tol, max_rank)
    }
}

/// Truncated-SVD compression of a dense block.
///
/// Keeps every singular value above `tol * σ_max` (and at most `max_rank`
/// of them; `max_rank = 0` means unlimited).
pub fn compress_svd(a: &Matrix, tol: f64, max_rank: usize) -> LowRank {
    let f = match svd(a) {
        Ok(f) => f,
        Err(_) => {
            // Extremely unlikely; fall back to the full-rank representation.
            return LowRank::new(a.clone(), Matrix::identity(a.ncols()));
        }
    };
    if f.s.is_empty() || f.s[0] == 0.0 {
        return LowRank::zero(a.nrows(), a.ncols());
    }
    let cutoff = tol * f.s[0];
    let mut k = f.s.iter().filter(|&&x| x > cutoff).count();
    if max_rank > 0 {
        k = k.min(max_rank);
    }
    if k == 0 {
        return LowRank::zero(a.nrows(), a.ncols());
    }
    let mut u = Matrix::zeros(a.nrows(), k);
    let mut v = Matrix::zeros(a.ncols(), k);
    for j in 0..k {
        let sqrt_s = f.s[j].sqrt();
        for i in 0..a.nrows() {
            u[(i, j)] = f.u[(i, j)] * sqrt_s;
        }
        for i in 0..a.ncols() {
            v[(i, j)] = f.vt[(j, i)] * sqrt_s;
        }
    }
    LowRank::new(u, v)
}

/// Rank-revealing-QR compression of a dense block.
///
/// Cheaper than the SVD path for strongly rank-deficient blocks; the
/// resulting rank can be slightly larger than the SVD rank at the same
/// tolerance.
pub fn compress_rrqr(a: &Matrix, tol: f64, max_rank: usize) -> LowRank {
    let f = column_pivoted_qr(a, tol, max_rank);
    if f.rank == 0 {
        return LowRank::zero(a.nrows(), a.ncols());
    }
    // A P = Q R  =>  A = Q (R P^T); V^T = R P^T, so V = P R^T.
    let n = a.ncols();
    let mut v = Matrix::zeros(n, f.rank);
    for j in 0..n {
        // Column perm[j] of A corresponds to column j of R.
        for i in 0..f.rank {
            v[(f.perm[j], i)] = f.r[(i, j)];
        }
    }
    LowRank::new(f.q, v)
}

/// Interpolative decomposition `A ≈ A(:, cols) * T`.
///
/// Returns the selected column indices and the interpolation matrix `T`
/// (`k x n`), with `T(:, cols) = I`.  Used by the skeleton-style tests and
/// as an alternative compression inside the H-matrix ACA verification.
pub fn interpolative_decomposition(a: &Matrix, tol: f64, max_rank: usize) -> (Vec<usize>, Matrix) {
    let f = column_pivoted_qr(a, tol, max_rank);
    let k = f.rank;
    let n = a.ncols();
    if k == 0 {
        return (vec![], Matrix::zeros(0, n));
    }
    let cols: Vec<usize> = f.perm[..k].to_vec();
    // R = [R11 R12], T_pivoted = [I, R11^{-1} R12].
    let r11 = f.r.submatrix(0, k, 0, k);
    let r12 = f.r.submatrix(0, k, k, n);
    let lu = crate::lu::lu(&r11);
    let x = match lu.and_then(|f| f.solve_multi(&r12)) {
        Ok(x) => x,
        Err(_) => Matrix::zeros(k, n - k),
    };
    let mut t = Matrix::zeros(k, n);
    for j in 0..k {
        t[(j, f.perm[j])] = 1.0;
    }
    for j in 0..(n - k) {
        for i in 0..k {
            t[(i, f.perm[k + j])] = x[(i, j)];
        }
    }
    (cols, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, relative_error};
    use crate::random::{gaussian_matrix, Pcg64};

    fn rank_deficient(seed: u64, m: usize, n: usize, r: usize) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        let u = gaussian_matrix(&mut rng, m, r);
        let v = gaussian_matrix(&mut rng, r, n);
        matmul(&u, &v)
    }

    #[test]
    fn svd_compression_recovers_low_rank() {
        let a = rank_deficient(1, 30, 20, 4);
        let lr = compress_svd(&a, 1e-10, 0);
        assert_eq!(lr.rank(), 4);
        assert!(relative_error(&a, &lr.to_dense()) < 1e-9);
    }

    #[test]
    fn rrqr_compression_recovers_low_rank() {
        let a = rank_deficient(2, 25, 35, 6);
        let lr = compress_rrqr(&a, 1e-10, 0);
        assert!(lr.rank() >= 6 && lr.rank() <= 8);
        assert!(relative_error(&a, &lr.to_dense()) < 1e-8);
    }

    #[test]
    fn compression_respects_max_rank() {
        let mut rng = Pcg64::seed_from_u64(3);
        let a = gaussian_matrix(&mut rng, 20, 20);
        let lr = compress_svd(&a, 0.0, 5);
        assert_eq!(lr.rank(), 5);
        let lr2 = compress_rrqr(&a, 0.0, 5);
        assert_eq!(lr2.rank(), 5);
    }

    #[test]
    fn compression_error_tracks_tolerance() {
        // Matrix with geometrically decaying singular values.
        let n = 24;
        let d: Vec<f64> = (0..n).map(|i| (0.5_f64).powi(i as i32)).collect();
        let a = Matrix::from_diag(&d);
        let lr = compress_svd(&a, 1e-4, 0);
        let err = relative_error(&a, &lr.to_dense());
        assert!(err < 1e-3, "error {err} too large for tol 1e-4");
        assert!(lr.rank() < n, "compression should truncate");
    }

    #[test]
    fn zero_block_compresses_to_rank_zero() {
        let z = Matrix::zeros(10, 8);
        let lr = compress_svd(&z, 1e-8, 0);
        assert_eq!(lr.rank(), 0);
        assert!(lr.to_dense().approx_eq(&z, 0.0));
        assert_eq!(lr.memory_bytes(), 0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = rank_deficient(4, 18, 12, 3);
        let lr = compress_svd(&a, 1e-12, 0);
        let mut rng = Pcg64::seed_from_u64(5);
        let x: Vec<f64> = (0..12).map(|_| rng.next_gaussian()).collect();
        let mut y_dense = vec![0.0; 18];
        crate::blas::gemv(&a, &x, &mut y_dense);
        let mut y_lr = vec![0.0; 18];
        lr.matvec(&x, &mut y_lr);
        for (a, b) in y_dense.iter().zip(y_lr.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_add_and_rmatvec_add() {
        let a = rank_deficient(6, 15, 10, 2);
        let lr = compress_svd(&a, 1e-12, 0);
        let mut rng = Pcg64::seed_from_u64(7);
        let x: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let xt: Vec<f64> = (0..15).map(|_| rng.next_gaussian()).collect();

        let mut y = vec![1.0; 15];
        lr.matvec_add(2.0, &x, &mut y);
        let mut y_ref = vec![0.0; 15];
        crate::blas::gemv(&a, &x, &mut y_ref);
        for i in 0..15 {
            assert!((y[i] - (1.0 + 2.0 * y_ref[i])).abs() < 1e-9);
        }

        let mut z = vec![0.5; 10];
        lr.rmatvec_add(-1.0, &xt, &mut z);
        let mut z_ref = vec![0.0; 10];
        crate::blas::gemv_t(&a, &xt, &mut z_ref);
        for i in 0..10 {
            assert!((z[i] - (0.5 - z_ref[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn recompress_reduces_inflated_rank() {
        let a = rank_deficient(8, 20, 20, 3);
        // Build an artificially rank-10 representation of a rank-3 matrix.
        let fat = compress_svd(&a, 0.0, 10);
        assert_eq!(fat.rank(), 10);
        let slim = fat.recompress(1e-10, 0);
        assert_eq!(slim.rank(), 3);
        assert!(relative_error(&a, &slim.to_dense()) < 1e-9);
    }

    #[test]
    fn interpolative_decomposition_reconstructs() {
        let a = rank_deficient(9, 16, 22, 5);
        let (cols, t) = interpolative_decomposition(&a, 1e-10, 0);
        assert_eq!(cols.len(), 5);
        let skeleton = a.select_cols(&cols);
        let rec = matmul(&skeleton, &t);
        assert!(relative_error(&a, &rec) < 1e-8);
        // T restricted to the selected columns must be the identity.
        for (j, &c) in cols.iter().enumerate() {
            for i in 0..cols.len() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((t[(i, c)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn memory_accounting_scales_with_rank() {
        let a = rank_deficient(10, 40, 40, 2);
        let lr = compress_svd(&a, 1e-10, 0);
        assert_eq!(lr.memory_bytes(), (40 * 2 + 40 * 2) * 8);
        assert!(lr.memory_bytes() < a.memory_bytes());
    }
}
