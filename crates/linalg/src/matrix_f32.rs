//! Row-major single-precision dense matrix — the storage type of the
//! mixed-precision factor store.
//!
//! [`MatrixF32`] deliberately exposes only the surface the f32 apply path
//! needs (construction, conversion to/from [`Matrix`], row access and raw
//! data): it is a *storage* format for factors that are applied, never
//! re-factored, so the full f64 [`Matrix`] API (QR, submatrices, stacking,
//! …) has no f32 twin. Halving the bytes per entry halves both the factor
//! memory and the memory bandwidth of the preconditioner-apply loop, which
//! is exactly the win the paper's tolerance study licenses for loose
//! factors.

use crate::matrix::Matrix;

/// Dense row-major `f32` matrix.
#[derive(Clone, PartialEq)]
pub struct MatrixF32 {
    nrows: usize,
    ncols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        MatrixF32 {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "MatrixF32::from_vec: data length mismatch"
        );
        MatrixF32 { nrows, ncols, data }
    }

    /// Demotes a double-precision matrix entrywise (round-to-nearest).
    pub fn from_f64(m: &Matrix) -> Self {
        MatrixF32 {
            nrows: m.nrows(),
            ncols: m.ncols(),
            data: m.data().iter().map(|&x| x as f32).collect(),
        }
    }

    /// Widens back to double precision (exact: every `f32` is an `f64`).
    pub fn to_f64(&self) -> Matrix {
        Matrix::from_vec(
            self.nrows,
            self.ncols,
            self.data.iter().map(|&x| x as f64).collect(),
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Heap bytes held by the matrix data.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl std::ops::Index<(usize, usize)> for MatrixF32 {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for MatrixF32 {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.ncols + j]
    }
}

impl std::fmt::Debug for MatrixF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "MatrixF32 {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.ncols > 8 { "…" } else { "" })?;
        }
        if self.nrows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_f64_is_exact() {
        let m = MatrixF32::from_vec(2, 3, vec![1.5, -2.25, 0.0, 3.0, 0.125, -7.5]);
        let wide = m.to_f64();
        let back = MatrixF32::from_f64(&wide);
        assert_eq!(m, back);
        assert_eq!(wide[(1, 2)], -7.5);
    }

    #[test]
    fn demotion_rounds_to_nearest() {
        let wide = Matrix::from_vec(1, 1, vec![1.0 + 1e-12]);
        let m = MatrixF32::from_f64(&wide);
        assert_eq!(m[(0, 0)], 1.0f32);
    }

    #[test]
    fn rows_and_memory_accounting() {
        let mut m = MatrixF32::zeros(3, 4);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.shape(), (3, 4));
        assert!(!m.is_square());
        assert_eq!(m.memory_bytes(), 3 * 4 * 4);
        m[(2, 0)] = 9.0;
        assert_eq!(m[(2, 0)], 9.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        let _ = MatrixF32::from_vec(2, 2, vec![1.0; 3]);
    }
}
