//! LU factorization with partial pivoting and the associated solver.
//!
//! The ULV factorization of the HSS format reduces the problem to a final
//! dense solve at the root; that solve (and the dense baselines in the
//! benchmarks) uses this module.  [`LuF32`] is the demoted sibling the
//! mixed-precision factor store applies: pivoting always runs in f64, the
//! factor is *stored* and back-substituted in f32.

use crate::matrix::Matrix;
use crate::matrix_f32::MatrixF32;
use crate::{LinalgError, LinalgResult};

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// `L` and `U` are stored packed in a single matrix: the unit diagonal of
/// `L` is implicit.
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Matrix,
    /// Row permutation: row `i` of the factored matrix came from row
    /// `pivots[i]` of the original.
    pivots: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Computes the LU factorization of a square matrix.
///
/// # Errors
/// Returns [`LinalgError::Singular`] when no usable pivot exists in some
/// column.
pub fn lu(a: &Matrix) -> LinalgResult<Lu> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            context: format!("lu on {}x{} matrix", a.nrows(), a.ncols()),
        });
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut pivots: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Partial pivoting: largest magnitude in column k at or below row k.
        let mut p = k;
        let mut best = m[(k, k)].abs();
        for i in (k + 1)..n {
            let v = m[(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == 0.0 {
            return Err(LinalgError::Singular { pivot: k });
        }
        if p != k {
            for j in 0..n {
                let tmp = m[(k, j)];
                m[(k, j)] = m[(p, j)];
                m[(p, j)] = tmp;
            }
            pivots.swap(k, p);
            sign = -sign;
        }
        let pivot = m[(k, k)];
        for i in (k + 1)..n {
            let factor = m[(i, k)] / pivot;
            m[(i, k)] = factor;
            for j in (k + 1)..n {
                m[(i, j)] -= factor * m[(k, j)];
            }
        }
    }
    Ok(Lu {
        packed: m,
        pivots,
        sign,
    })
}

impl Lu {
    /// Rebuilds a factorization from its stored parts (the inverse of the
    /// [`Lu::packed`] / [`Lu::pivots`] / [`Lu::sign`] accessors), validating
    /// the structural invariants so a corrupted serialization cannot produce
    /// an out-of-bounds solve.
    pub fn from_parts(packed: Matrix, pivots: Vec<usize>, sign: f64) -> LinalgResult<Lu> {
        if !packed.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "Lu::from_parts: packed factor is {}x{}",
                    packed.nrows(),
                    packed.ncols()
                ),
            });
        }
        let n = packed.nrows();
        if pivots.len() != n || !is_permutation(&pivots) {
            return Err(LinalgError::DimensionMismatch {
                context: format!("Lu::from_parts: pivots are not a permutation of 0..{n}"),
            });
        }
        if sign != 1.0 && sign != -1.0 {
            return Err(LinalgError::DimensionMismatch {
                context: format!("Lu::from_parts: permutation sign {sign} is not ±1"),
            });
        }
        Ok(Lu {
            packed,
            pivots,
            sign,
        })
    }

    /// The packed `L`/`U` storage (unit diagonal of `L` implicit).
    pub fn packed(&self) -> &Matrix {
        &self.packed
    }

    /// The row permutation applied by partial pivoting.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Sign of the row permutation.
    pub fn sign(&self) -> f64 {
        self.sign
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.nrows()
    }

    /// Solves `A x = b` using the stored factorization.
    pub fn solve(&self, b: &[f64]) -> LinalgResult<Vec<f64>> {
        let n = self.dim();
        assert_eq!(b.len(), n, "Lu::solve: rhs length mismatch");
        // Apply the row permutation to b.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        // Forward substitution with the unit-lower factor.
        for i in 0..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.packed[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution with the upper factor.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            let d = self.packed[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix of right-hand sides.
    ///
    /// Applies the pivot permutation once, sweeps the implicit-unit lower
    /// factor across all columns at a time, and finishes with the active
    /// backend's in-place upper TRSM — element-for-element the same scalar
    /// sequence as solving column by column.
    pub fn solve_multi(&self, b: &Matrix) -> LinalgResult<Matrix> {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "Lu::solve_multi: dim mismatch");
        let r = b.ncols();
        let mut x = Matrix::zeros(n, r);
        for (i, &p) in self.pivots.iter().enumerate() {
            x.row_mut(i).copy_from_slice(b.row(p));
        }
        // Forward substitution with the unit-lower factor (no divide).
        for i in 0..n {
            for j in 0..i {
                let lij = self.packed[(i, j)];
                let (done, rest) = x.data_mut().split_at_mut(i * r);
                let xj = &done[j * r..(j + 1) * r];
                let xi = &mut rest[..r];
                for (xic, xjc) in xi.iter_mut().zip(xj.iter()) {
                    *xic -= lij * xjc;
                }
            }
        }
        // Back substitution reads only the upper triangle of the packed
        // storage, which is exactly what the backend TRSM consumes.
        crate::backend::active().trsm_upper_into(&self.packed, &mut x)?;
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.packed[(i, i)];
        }
        det
    }

    /// Explicitly forms the inverse (used only in tests and tiny blocks).
    pub fn inverse(&self) -> LinalgResult<Matrix> {
        self.solve_multi(&Matrix::identity(self.dim()))
    }
}

/// Single-precision LU factor store: the packed `L`/`U` of an [`Lu`]
/// demoted to f32.
///
/// Never produced by factoring in f32 — always by demoting an f64
/// factorization whose pivot order is therefore exact.  Solves mirror
/// [`Lu::solve`] operation for operation in single precision.
#[derive(Debug, Clone)]
pub struct LuF32 {
    packed: MatrixF32,
    pivots: Vec<usize>,
    sign: f64,
}

impl LuF32 {
    /// Demotes a double-precision factorization entrywise.
    pub fn from_lu(f: &Lu) -> LuF32 {
        LuF32 {
            packed: MatrixF32::from_f64(f.packed()),
            pivots: f.pivots().to_vec(),
            sign: f.sign(),
        }
    }

    /// Rebuilds a demoted factorization from stored parts, with the same
    /// structural validation as [`Lu::from_parts`].
    pub fn from_parts(packed: MatrixF32, pivots: Vec<usize>, sign: f64) -> LinalgResult<LuF32> {
        if !packed.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "LuF32::from_parts: packed factor is {}x{}",
                    packed.nrows(),
                    packed.ncols()
                ),
            });
        }
        let n = packed.nrows();
        if pivots.len() != n || !is_permutation(&pivots) {
            return Err(LinalgError::DimensionMismatch {
                context: format!("LuF32::from_parts: pivots are not a permutation of 0..{n}"),
            });
        }
        if sign != 1.0 && sign != -1.0 {
            return Err(LinalgError::DimensionMismatch {
                context: format!("LuF32::from_parts: permutation sign {sign} is not ±1"),
            });
        }
        Ok(LuF32 {
            packed,
            pivots,
            sign,
        })
    }

    /// The packed f32 `L`/`U` storage (unit diagonal of `L` implicit).
    pub fn packed(&self) -> &MatrixF32 {
        &self.packed
    }

    /// The row permutation applied by partial pivoting (inherited exactly
    /// from the f64 factorization).
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Sign of the row permutation.
    pub fn sign(&self) -> f64 {
        self.sign
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.nrows()
    }

    /// Heap bytes held by the factor storage.
    pub fn memory_bytes(&self) -> usize {
        self.packed.memory_bytes() + self.pivots.len() * std::mem::size_of::<usize>()
    }

    /// Solves `A x = b` reading the f32 factors but computing in f64: the
    /// same permute / forward / backward sweep as [`Lu::solve`], with every
    /// packed entry widened in registers.
    ///
    /// This is the solve the mixed-precision ULV apply uses — the result is
    /// the exact f64 solve of the f32-rounded factorization, so the only
    /// error the caller sees is the factors' one-time storage rounding
    /// (a fixed linear perturbation, not per-apply f32 noise).
    pub fn solve_f64(&self, b: &[f64]) -> LinalgResult<Vec<f64>> {
        let n = self.dim();
        assert_eq!(b.len(), n, "LuF32::solve_f64: rhs length mismatch");
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.packed[(i, j)] as f64 * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] as f64 * x[j];
            }
            let d = self.packed[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = s / d as f64;
        }
        Ok(x)
    }

    /// Solves `A x = b` in single precision (same permute / forward /
    /// backward sweep as [`Lu::solve`]).
    pub fn solve(&self, b: &[f32]) -> LinalgResult<Vec<f32>> {
        let n = self.dim();
        assert_eq!(b.len(), n, "LuF32::solve: rhs length mismatch");
        let mut x: Vec<f32> = self.pivots.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.packed[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            let d = self.packed[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix of f32 right-hand sides, finishing
    /// with the active f32 backend's upper TRSM (mirrors
    /// [`Lu::solve_multi`]).
    pub fn solve_multi(&self, b: &MatrixF32) -> LinalgResult<MatrixF32> {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "LuF32::solve_multi: dim mismatch");
        let r = b.ncols();
        let mut x = MatrixF32::zeros(n, r);
        for (i, &p) in self.pivots.iter().enumerate() {
            x.row_mut(i).copy_from_slice(b.row(p));
        }
        for i in 0..n {
            for j in 0..i {
                let lij = self.packed[(i, j)];
                let (done, rest) = x.data_mut().split_at_mut(i * r);
                let xj = &done[j * r..(j + 1) * r];
                let xi = &mut rest[..r];
                for (xic, xjc) in xi.iter_mut().zip(xj.iter()) {
                    *xic -= lij * xjc;
                }
            }
        }
        crate::backend::active_f32().trsm_upper_into(&self.packed, &mut x)?;
        Ok(x)
    }
}

/// One-shot dense solve `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    lu(a)?.solve(b)
}

/// Whether `p` contains every index `0..p.len()` exactly once — the
/// validity check shared by every deserialized permutation (LU pivots here,
/// the clustering permutation in `hkrr_core`).
pub fn is_permutation(p: &[usize]) -> bool {
    let mut seen = vec![false; p.len()];
    for &i in p {
        if i >= p.len() || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemv, matmul, relative_error};
    use crate::random::{gaussian_matrix, Pcg64};

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = Pcg64::seed_from_u64(1);
        let n = 25;
        let a = {
            let mut a = gaussian_matrix(&mut rng, n, n);
            a.shift_diagonal(5.0); // keep well conditioned
            a
        };
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut b = vec![0.0; n];
        gemv(&a, &x_true, &mut b);
        let x = solve(&a, &b).unwrap();
        let err: f64 = x
            .iter()
            .zip(x_true.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "max error {err}");
    }

    #[test]
    fn multi_rhs_solve() {
        let mut rng = Pcg64::seed_from_u64(2);
        let a = {
            let mut a = gaussian_matrix(&mut rng, 12, 12);
            a.shift_diagonal(4.0);
            a
        };
        let b = gaussian_matrix(&mut rng, 12, 5);
        let f = lu(&a).unwrap();
        let x = f.solve_multi(&b).unwrap();
        assert!(relative_error(&b, &matmul(&a, &x)) < 1e-10);
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(6);
        let f = lu(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(f.solve(&b).unwrap(), b);
        assert!((f.determinant() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        assert!((lu(&d).unwrap().determinant() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Permutation matrix swapping two rows has determinant -1.
        let mut p = Matrix::zeros(2, 2);
        p[(0, 1)] = 1.0;
        p[(1, 0)] = 1.0;
        assert!((lu(&p).unwrap().determinant() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut a = gaussian_matrix(&mut rng, 10, 10);
        a.shift_diagonal(6.0);
        let inv = lu(&a).unwrap().inverse().unwrap();
        assert!(relative_error(&Matrix::identity(10), &matmul(&a, &inv)) < 1e-10);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        // third row/column all zero -> singular
        assert!(matches!(lu(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_matrix_is_rejected() {
        let a = Matrix::zeros(3, 4);
        assert!(matches!(lu(&a), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut rng = Pcg64::seed_from_u64(9);
        let mut a = gaussian_matrix(&mut rng, 8, 8);
        a.shift_diagonal(5.0);
        let f = lu(&a).unwrap();
        let rebuilt = Lu::from_parts(f.packed().clone(), f.pivots().to_vec(), f.sign()).unwrap();
        let b: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        // Bitwise-identical solves: the rebuilt factorization is the same data.
        assert_eq!(f.solve(&b).unwrap(), rebuilt.solve(&b).unwrap());

        // Rejected: rectangular packed factor, bad pivots, bad sign.
        assert!(Lu::from_parts(Matrix::zeros(3, 4), vec![0, 1, 2], 1.0).is_err());
        assert!(Lu::from_parts(Matrix::identity(3), vec![0, 0, 2], 1.0).is_err());
        assert!(Lu::from_parts(Matrix::identity(3), vec![0, 1], 1.0).is_err());
        assert!(Lu::from_parts(Matrix::identity(3), vec![0, 1, 2], 0.5).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn demoted_lu_solves_to_single_precision() {
        let mut rng = Pcg64::seed_from_u64(11);
        let n = 20;
        let mut a = gaussian_matrix(&mut rng, n, n);
        a.shift_diagonal(6.0);
        let f = lu(&a).unwrap();
        let f32f = LuF32::from_lu(&f);
        assert_eq!(f32f.dim(), n);
        assert_eq!(f32f.pivots(), f.pivots());
        assert!(f32f.memory_bytes() * 2 < f.packed().memory_bytes() + n * 24);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let x64 = f.solve(&b).unwrap();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let x32 = f32f.solve(&b32).unwrap();
        for (w, s) in x64.iter().zip(x32.iter()) {
            assert!((w - *s as f64).abs() < 1e-5, "f64 {w} vs f32 {s}");
        }
    }

    #[test]
    fn demoted_lu_widened_solve_tracks_the_f64_solve() {
        let mut rng = Pcg64::seed_from_u64(12);
        let n = 20;
        let mut a = gaussian_matrix(&mut rng, n, n);
        a.shift_diagonal(6.0);
        let f = lu(&a).unwrap();
        let f32f = LuF32::from_lu(&f);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let x64 = f.solve(&b).unwrap();
        let widened = f32f.solve_f64(&b).unwrap();
        for (w, s) in x64.iter().zip(widened.iter()) {
            assert!((w - s).abs() < 1e-5, "f64 {w} vs widened {s}");
        }
        // On an exactly representable factorization the widened solve IS
        // the f64 solve, bitwise: only the storage rounding separates them.
        let ident = lu(&Matrix::identity(n)).unwrap();
        let ident32 = LuF32::from_lu(&ident);
        assert_eq!(ident.solve(&b).unwrap(), ident32.solve_f64(&b).unwrap());
    }

    #[test]
    fn demoted_lu_multi_rhs_matches_per_column_solves() {
        let mut rng = Pcg64::seed_from_u64(13);
        let n = 10;
        let mut a = gaussian_matrix(&mut rng, n, n);
        a.shift_diagonal(5.0);
        let f32f = LuF32::from_lu(&lu(&a).unwrap());
        let b = gaussian_matrix(&mut rng, n, 3);
        let x = f32f.solve_multi(&MatrixF32::from_f64(&b)).unwrap();
        for c in 0..3 {
            let col: Vec<f32> = (0..n).map(|i| b[(i, c)] as f32).collect();
            let xc = f32f.solve(&col).unwrap();
            for i in 0..n {
                assert!((x[(i, c)] - xc[i]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn lu_f32_from_parts_validates() {
        let ident = MatrixF32::from_f64(&Matrix::identity(3));
        assert!(LuF32::from_parts(ident.clone(), vec![0, 1, 2], 1.0).is_ok());
        assert!(LuF32::from_parts(MatrixF32::zeros(3, 4), vec![0, 1, 2], 1.0).is_err());
        assert!(LuF32::from_parts(ident.clone(), vec![0, 0, 2], 1.0).is_err());
        assert!(LuF32::from_parts(ident, vec![0, 1, 2], 0.5).is_err());
    }
}
