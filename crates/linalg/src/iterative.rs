//! Matrix-free iterative solvers: preconditioned conjugate gradients.
//!
//! The direct pipeline (compress → ULV → solve) pays for its accuracy: the
//! HSS tolerance must be tight enough that the *compressed* system's
//! solution is usable as-is. PCG inverts that trade. The operator side
//! stays **exact** — only matvecs with the implicit matrix are needed, so
//! nothing is compressed on the system being solved — while the
//! preconditioner may be as crude as a diagonal or a loose-tolerance
//! factorization. Each PCG iteration then removes the preconditioner's
//! error instead of baking it into the answer.
//!
//! This module provides the building blocks:
//!
//! * [`Preconditioner`] — anything that applies an approximate inverse
//!   `z ≈ A⁻¹ r`,
//! * [`IdentityPreconditioner`] (plain CG) and [`JacobiPreconditioner`]
//!   (diagonal scaling),
//! * [`pcg`] — preconditioned conjugate gradients over any
//!   [`LinearOperator`], recording the relative-residual history.
//!
//! The heavyweight preconditioner — a loose-tolerance HSS ULV
//! factorization — lives in the `hss` crate, which implements
//! [`Preconditioner`] for its `UlvFactorization`.
//!
//! Every step of the iteration is deterministic: the dot products and
//! vector updates are sequential, and [`LinearOperator::matvec`]
//! implementations in this workspace keep per-row arithmetic in sequential
//! order, so PCG results are bitwise reproducible across thread counts.

use crate::operator::LinearOperator;
use crate::{blas, LinalgError, LinalgResult};

/// An approximate inverse `z ≈ A⁻¹ r`, applied once per PCG iteration.
///
/// For conjugate gradients to converge the preconditioner must be symmetric
/// positive definite (like the operator itself); implementations are not
/// required to verify this.
pub trait Preconditioner {
    /// Dimension of the (square) preconditioned system.
    fn dim(&self) -> usize;

    /// Applies the approximate inverse: `z ≈ A⁻¹ r`.
    ///
    /// # Errors
    /// Returns an error when the application fails (e.g. a factorization
    /// backing the preconditioner is numerically singular).
    fn apply(&self, r: &[f64], z: &mut [f64]) -> LinalgResult<()>;
}

/// The identity preconditioner: PCG degenerates to plain CG.
#[derive(Debug, Clone, Copy)]
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Identity preconditioner for an `n`-dimensional system.
    pub fn new(n: usize) -> Self {
        IdentityPreconditioner { n }
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) -> LinalgResult<()> {
        if r.len() != self.n || z.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "identity preconditioner of dim {} applied to r[{}] / z[{}]",
                    self.n,
                    r.len(),
                    z.len()
                ),
            });
        }
        z.copy_from_slice(r);
        Ok(())
    }
}

/// Diagonal (Jacobi) preconditioner: `z_i = r_i / A_ii`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Extracts the diagonal of `a` and inverts it.
    ///
    /// # Errors
    /// Returns [`LinalgError::Singular`] when a diagonal entry is zero or
    /// non-finite (Jacobi is undefined there).
    pub fn from_operator(a: &impl LinearOperator) -> LinalgResult<Self> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "Jacobi preconditioner of a {}x{} operator",
                    a.nrows(),
                    a.ncols()
                ),
            });
        }
        let mut inv_diag = Vec::with_capacity(a.nrows());
        for i in 0..a.nrows() {
            let d = a.entry(i, i);
            if d == 0.0 || !d.is_finite() {
                return Err(LinalgError::Singular { pivot: i });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPreconditioner { inv_diag })
    }

    /// Builds the preconditioner from an explicit diagonal.
    ///
    /// # Errors
    /// Returns [`LinalgError::Singular`] when an entry is zero or
    /// non-finite.
    pub fn from_diagonal(diag: &[f64]) -> LinalgResult<Self> {
        let mut inv_diag = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d == 0.0 || !d.is_finite() {
                return Err(LinalgError::Singular { pivot: i });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPreconditioner { inv_diag })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) -> LinalgResult<()> {
        if r.len() != self.inv_diag.len() || z.len() != self.inv_diag.len() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "Jacobi preconditioner of dim {} applied to r[{}] / z[{}]",
                    self.inv_diag.len(),
                    r.len(),
                    z.len()
                ),
            });
        }
        for ((zi, &ri), &di) in z.iter_mut().zip(r.iter()).zip(self.inv_diag.iter()) {
            *zi = ri * di;
        }
        Ok(())
    }
}

/// Stopping criteria for [`pcg`].
#[derive(Debug, Clone, Copy)]
pub struct PcgOptions {
    /// Convergence threshold on the *relative* residual `‖b − Ax‖ / ‖b‖`.
    pub tolerance: f64,
    /// Iteration budget; exceeding it yields `converged == false` in the
    /// result rather than an error, so callers keep the partial solution
    /// and the history.
    pub max_iterations: usize,
}

impl Default for PcgOptions {
    fn default() -> Self {
        PcgOptions {
            tolerance: 1e-8,
            max_iterations: 500,
        }
    }
}

/// The outcome of a [`pcg`] run.
#[derive(Debug, Clone)]
pub struct PcgResult {
    /// The (approximate) solution of `A x = b`.
    pub x: Vec<f64>,
    /// Number of iterations performed (matvecs with `A`, applications of
    /// the preconditioner beyond the initial one).
    pub iterations: usize,
    /// Relative residual `‖b − Ax‖ / ‖b‖` after every iteration, starting
    /// with the initial residual (1.0 for the zero initial guess).
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

impl PcgResult {
    /// The last recorded relative residual.
    pub fn final_residual(&self) -> f64 {
        self.residual_history.last().copied().unwrap_or(0.0)
    }
}

/// Preconditioned conjugate gradients for `A x = b` with a symmetric
/// positive definite operator `A`, starting from the zero vector.
///
/// Only matvecs with `A` are required, so the operator can stay implicit
/// (e.g. a closed-form kernel matrix plus a diagonal shift) — nothing is
/// assembled or compressed on the system actually being solved.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] for inconsistent shapes,
/// [`LinalgError::NotPositiveDefinite`] when a search direction has
/// non-positive curvature `pᵀAp ≤ 0` (the operator or preconditioner is
/// not SPD), and propagates preconditioner failures. Running out of
/// iterations is **not** an error: the result carries `converged == false`
/// together with the best iterate and the full residual history.
pub fn pcg(
    a: &(impl LinearOperator + ?Sized),
    b: &[f64],
    m: &(impl Preconditioner + ?Sized),
    opts: &PcgOptions,
) -> LinalgResult<PcgResult> {
    let n = b.len();
    if a.nrows() != n || a.ncols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: format!("pcg: operator is {}x{}, b has {}", a.nrows(), a.ncols(), n),
        });
    }
    if m.dim() != n {
        return Err(LinalgError::DimensionMismatch {
            context: format!(
                "pcg: preconditioner dim {} for system of size {}",
                m.dim(),
                n
            ),
        });
    }

    let b_norm = blas::nrm2(b);
    if b_norm == 0.0 {
        // The unique solution of a definite system with b = 0.
        return Ok(PcgResult {
            x: vec![0.0; n],
            iterations: 0,
            residual_history: vec![0.0],
            converged: true,
        });
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b − A·0
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z)?;
    let mut p = z.clone();
    let mut q = vec![0.0; n];
    let mut rz = blas::dot(&r, &z);

    let mut residual_history = Vec::with_capacity(opts.max_iterations.min(128) + 1);
    residual_history.push(1.0);
    if 1.0 <= opts.tolerance {
        return Ok(PcgResult {
            x,
            iterations: 0,
            residual_history,
            converged: true,
        });
    }

    for iteration in 1..=opts.max_iterations {
        a.matvec(&p, &mut q);
        let pq = blas::dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: iteration });
        }
        let alpha = rz / pq;
        blas::axpy(alpha, &p, &mut x);
        blas::axpy(-alpha, &q, &mut r);

        let rel = blas::nrm2(&r) / b_norm;
        residual_history.push(rel);
        if rel <= opts.tolerance {
            return Ok(PcgResult {
                x,
                iterations: iteration,
                residual_history,
                converged: true,
            });
        }

        m.apply(&r, &mut z)?;
        let rz_next = blas::dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for (pi, &zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }

    Ok(PcgResult {
        x,
        iterations: opts.max_iterations,
        residual_history,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky;
    use crate::random::{gaussian_matrix, Pcg64};
    use crate::Matrix;

    /// A random SPD matrix `G Gᵀ + n·I`.
    fn spd(seed: u64, n: usize) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        let g = gaussian_matrix(&mut rng, n, n);
        let mut a = blas::matmul(&g, &g.transpose());
        a.shift_diagonal(n as f64);
        a
    }

    fn rhs(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = Pcg64::seed_from_u64(seed);
        (0..n).map(|_| rng.next_gaussian()).collect()
    }

    #[test]
    fn cg_matches_cholesky_on_spd_system() {
        let a = spd(1, 40);
        let b = rhs(2, 40);
        let direct = cholesky::cholesky(&a).unwrap().solve(&b).unwrap();
        let result = pcg(
            &a,
            &b,
            &IdentityPreconditioner::new(40),
            &PcgOptions {
                tolerance: 1e-12,
                max_iterations: 400,
            },
        )
        .unwrap();
        assert!(result.converged, "history {:?}", result.residual_history);
        for (x, d) in result.x.iter().zip(direct.iter()) {
            assert!((x - d).abs() < 1e-8, "pcg {x} vs cholesky {d}");
        }
        assert_eq!(result.residual_history.len(), result.iterations + 1);
        assert!(result.final_residual() <= 1e-12);
    }

    #[test]
    fn jacobi_preconditioning_helps_on_badly_scaled_diagonals() {
        // Strongly diagonally dominant but badly scaled: Jacobi fixes the
        // scaling and needs far fewer iterations than plain CG.
        let n = 60;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 10.0_f64.powi((i % 7) as i32);
            if i + 1 < n {
                a[(i, i + 1)] = 0.1;
                a[(i + 1, i)] = 0.1;
            }
        }
        let b = rhs(3, n);
        let opts = PcgOptions {
            tolerance: 1e-10,
            max_iterations: 1000,
        };
        let plain = pcg(&a, &b, &IdentityPreconditioner::new(n), &opts).unwrap();
        let jacobi = JacobiPreconditioner::from_operator(&a).unwrap();
        let pre = pcg(&a, &b, &jacobi, &opts).unwrap();
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "jacobi {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn residual_history_is_recorded_and_monotone_at_the_end() {
        let a = spd(4, 30);
        let b = rhs(5, 30);
        let r = pcg(
            &a,
            &b,
            &IdentityPreconditioner::new(30),
            &PcgOptions::default(),
        )
        .unwrap();
        assert!(r.converged);
        assert_eq!(r.residual_history[0], 1.0);
        assert!(r.final_residual() <= 1e-8);
        assert!(r.residual_history.len() >= 2);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = spd(6, 10);
        let r = pcg(
            &a,
            &[0.0; 10],
            &IdentityPreconditioner::new(10),
            &PcgOptions::default(),
        )
        .unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn budget_exhaustion_is_not_an_error() {
        let a = spd(7, 50);
        let b = rhs(8, 50);
        let r = pcg(
            &a,
            &b,
            &IdentityPreconditioner::new(50),
            &PcgOptions {
                tolerance: 1e-14,
                max_iterations: 2,
            },
        )
        .unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
        assert_eq!(r.residual_history.len(), 3);
    }

    #[test]
    fn indefinite_operator_is_detected() {
        let mut a = Matrix::identity(5);
        a[(3, 3)] = -1.0;
        let b = rhs(9, 5);
        assert!(matches!(
            pcg(
                &a,
                &b,
                &IdentityPreconditioner::new(5),
                &PcgOptions::default()
            ),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn dimension_mismatches_are_typed_errors() {
        let a = spd(10, 8);
        let b = rhs(11, 8);
        assert!(matches!(
            pcg(
                &a,
                &b[..4],
                &IdentityPreconditioner::new(4),
                &PcgOptions::default()
            ),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            pcg(
                &a,
                &b,
                &IdentityPreconditioner::new(4),
                &PcgOptions::default()
            ),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, 0.0]).is_err());
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, f64::NAN]).is_err());
        let mut z = vec![0.0; 3];
        assert!(IdentityPreconditioner::new(2)
            .apply(&[1.0, 2.0], &mut z)
            .is_err());
        let j = JacobiPreconditioner::from_diagonal(&[2.0, 4.0]).unwrap();
        assert!(j.apply(&[1.0], &mut z).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let a = spd(12, 25);
        let b = rhs(13, 25);
        let jacobi = JacobiPreconditioner::from_operator(&a).unwrap();
        let r1 = pcg(&a, &b, &jacobi, &PcgOptions::default()).unwrap();
        let r2 = pcg(&a, &b, &jacobi, &PcgOptions::default()).unwrap();
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.residual_history, r2.residual_history);
    }
}
