//! Cross-backend accuracy contract (proptest).
//!
//! The dense backends are deterministic *within* a backend (bitwise, at
//! any thread count) but only accuracy-bounded *across* backends: the
//! blocked and AVX2 substrates reassociate the k-reduction, so their
//! results may differ from the scalar reference in the last few ulps.
//! These properties pin that contract: for random shapes — including the
//! degenerate 0- and 1-dimension edges — every available backend must
//! agree with [`hkrr_linalg::backend::ScalarBackend`] componentwise to a
//! relative tolerance proportional to the reduction length.

use hkrr_linalg::backend::available_backends;
use hkrr_linalg::random::gaussian_matrix;
use hkrr_linalg::{Matrix, Pcg64};
use proptest::prelude::*;

/// Componentwise check: `|got − want| ≤ tol · max(1, |want|)` with
/// `tol = 1e-12 · (k + 1)` for a length-`k` reduction.
fn assert_componentwise_close(got: &Matrix, want: &Matrix, k: usize, what: &str) {
    assert_eq!(got.nrows(), want.nrows(), "{what}: row mismatch");
    assert_eq!(got.ncols(), want.ncols(), "{what}: col mismatch");
    let tol = 1e-12 * (k as f64 + 1.0);
    for i in 0..want.nrows() {
        for j in 0..want.ncols() {
            let (g, w) = (got[(i, j)], want[(i, j)]);
            assert!(
                (g - w).abs() <= tol * w.abs().max(1.0),
                "{what}: entry ({i},{j}) differs: {g} vs {w} (tol {tol:e})"
            );
        }
    }
}

/// Well-conditioned lower-triangular factor: unit-scale random strictly
/// lower part over a dominant diagonal.
fn lower_factor(rng: &mut Pcg64, m: usize) -> Matrix {
    let mut l = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..i {
            l[(i, j)] = 0.3 * rng.next_gaussian();
        }
        l[(i, i)] = 2.0 + rng.next_f64();
    }
    l
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three GEMM variants agree with scalar for arbitrary shapes,
    /// including empty (0) and degenerate (1) dimensions.
    #[test]
    fn gemm_variants_match_scalar(
        m in 0usize..48,
        k in 0usize..48,
        n in 0usize..48,
        seed in 0u64..1000,
    ) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let a = gaussian_matrix(&mut rng, m, k);
        let b = gaussian_matrix(&mut rng, k, n);
        let at = a.transpose();
        let bt = b.transpose();
        let backends = available_backends();
        let scalar = backends[0].instance();

        let mut want = Matrix::zeros(m, n);
        scalar.gemm_into(&a, &b, &mut want);
        let mut want_tn = Matrix::zeros(m, n);
        scalar.gemm_tn_into(&at, &b, &mut want_tn);
        let mut want_nt = Matrix::zeros(m, n);
        scalar.gemm_nt_into(&a, &bt, &mut want_nt);

        for kind in &backends[1..] {
            let be = kind.instance();
            // Poison the output buffer: *_into must overwrite, not add.
            let mut got = Matrix::from_fn(m, n, |_, _| f64::NAN);
            be.gemm_into(&a, &b, &mut got);
            assert_componentwise_close(&got, &want, k, &format!("{kind} gemm"));
            let mut got_tn = Matrix::from_fn(m, n, |_, _| f64::NAN);
            be.gemm_tn_into(&at, &b, &mut got_tn);
            assert_componentwise_close(&got_tn, &want_tn, k, &format!("{kind} gemm_tn"));
            let mut got_nt = Matrix::from_fn(m, n, |_, _| f64::NAN);
            be.gemm_nt_into(&a, &bt, &mut got_nt);
            assert_componentwise_close(&got_nt, &want_nt, k, &format!("{kind} gemm_nt"));
        }
    }

    /// SYRK agrees with scalar and stays exactly symmetric per backend.
    #[test]
    fn syrk_matches_scalar_and_is_symmetric(
        m in 0usize..40,
        k in 0usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = Pcg64::seed_from_u64(seed ^ 0x5e5e);
        let a = gaussian_matrix(&mut rng, m, k);
        let backends = available_backends();
        let mut want = Matrix::zeros(m, m);
        backends[0].instance().syrk_into(&a, &mut want);
        for kind in &backends[1..] {
            let be = kind.instance();
            let mut got = Matrix::from_fn(m, m, |_, _| f64::NAN);
            be.syrk_into(&a, &mut got);
            assert_componentwise_close(&got, &want, k, &format!("{kind} syrk"));
            for i in 0..m {
                for j in 0..m {
                    assert_eq!(got[(i, j)], got[(j, i)], "{kind} syrk not bitwise symmetric");
                }
            }
        }
    }

    /// Triangular multi-RHS solves agree with scalar on well-conditioned
    /// factors (relative tolerance scaled by the sweep length).
    #[test]
    fn trsm_matches_scalar(
        m in 1usize..40,
        r in 0usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = Pcg64::seed_from_u64(seed ^ 0x7a7a);
        let l = lower_factor(&mut rng, m);
        let u = l.transpose();
        let b = gaussian_matrix(&mut rng, m, r);
        let backends = available_backends();
        let scalar = backends[0].instance();
        let mut want_l = b.clone();
        scalar.trsm_lower_into(&l, &mut want_l).unwrap();
        let mut want_u = b.clone();
        scalar.trsm_upper_into(&u, &mut want_u).unwrap();
        for kind in &backends[1..] {
            let be = kind.instance();
            let mut got_l = b.clone();
            be.trsm_lower_into(&l, &mut got_l).unwrap();
            assert_componentwise_close(&got_l, &want_l, m, &format!("{kind} trsm_lower"));
            let mut got_u = b.clone();
            be.trsm_upper_into(&u, &mut got_u).unwrap();
            assert_componentwise_close(&got_u, &want_u, m, &format!("{kind} trsm_upper"));
        }
    }

    /// The distance kernels agree with scalar across dimensions spanning
    /// the SIMD threshold (d = 8), including d = 0 and 1.
    #[test]
    fn distances_match_scalar(
        nx in 0usize..20,
        ny in 0usize..20,
        d in 0usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = Pcg64::seed_from_u64(seed ^ 0xd15);
        let x = gaussian_matrix(&mut rng, nx, d);
        let y = gaussian_matrix(&mut rng, ny, d);
        let backends = available_backends();
        let scalar = backends[0].instance();
        let mut want = Matrix::zeros(nx, ny);
        scalar.sq_dists_into(&x, &y, &mut want);
        let tol = 1e-12 * (d as f64 + 1.0);
        for kind in &backends[1..] {
            let be = kind.instance();
            let mut got = Matrix::from_fn(nx, ny, |_, _| f64::NAN);
            be.sq_dists_into(&x, &y, &mut got);
            assert_componentwise_close(&got, &want, d, &format!("{kind} sq_dists"));
            // Row/point forms agree with the matrix form entrywise.
            if ny > 0 {
                let mut row = vec![f64::NAN; nx];
                be.dists_to_point_into(&x, y.row(0), &mut row);
                for i in 0..nx {
                    assert!(
                        (row[i] - want[(i, 0)]).abs() <= tol * want[(i, 0)].abs().max(1.0),
                        "{kind} dists_to_point entry {i}: {} vs {}",
                        row[i],
                        want[(i, 0)]
                    );
                }
                if nx > 0 {
                    let d2 = be.sq_distance(x.row(0), y.row(0));
                    assert!(
                        (d2 - want[(0, 0)]).abs() <= tol * want[(0, 0)].abs().max(1.0),
                        "{kind} sq_distance: {d2} vs {}",
                        want[(0, 0)]
                    );
                    // Squared distances can never go negative (the backends
                    // compute Σ(x−y)², never the cancellation-prone
                    // ‖x‖²+‖y‖²−2x·y expansion).
                    assert!(d2 >= 0.0);
                }
            }
        }
    }
}

/// The scalar backend heads the availability list, so the properties above
/// always compare against the reference implementation.
#[test]
fn scalar_backend_is_first_and_always_available() {
    let backends = available_backends();
    assert!(!backends.is_empty());
    assert_eq!(backends[0].as_str(), "scalar");
}
