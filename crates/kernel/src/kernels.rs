//! Kernel functions.
//!
//! The paper studies the Gaussian radial basis function (Eq. 1.1); the
//! Laplacian, polynomial and linear kernels are provided as well so the
//! pipeline can be exercised on kernels with different rank behaviour.

/// A positive (semi-)definite kernel `K(x, y)` on `R^d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelFunction {
    /// Gaussian RBF: `exp(-||x - y||^2 / (2 h^2))` — Eq. (1.1) of the paper.
    Gaussian {
        /// Bandwidth `h`.  Small `h` drives `K` towards the identity; large
        /// `h` towards the rank-one all-ones matrix.
        h: f64,
    },
    /// Laplacian kernel: `exp(-||x - y|| / h)`.
    Laplacian {
        /// Bandwidth `h`.
        h: f64,
    },
    /// Polynomial kernel: `(x·y + c)^degree`.
    Polynomial {
        /// Polynomial degree.
        degree: u32,
        /// Additive constant `c`.
        c: f64,
    },
    /// Linear kernel: `x·y` (recovers classical ridge regression).
    Linear,
}

impl KernelFunction {
    /// The most common constructor: a Gaussian kernel of bandwidth `h`.
    pub fn gaussian(h: f64) -> Self {
        assert!(h > 0.0, "Gaussian kernel requires h > 0");
        KernelFunction::Gaussian { h }
    }

    /// Evaluates the kernel on two points.
    ///
    /// # Panics
    /// Panics (in debug builds) if the points have different dimensions.
    #[inline]
    pub fn evaluate(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len(), "kernel points must share dimension");
        match *self {
            // Radial kernels route the distance through the active dense
            // backend, which vectorizes it for points of dimension >= 8
            // (lower dimensions take the identical scalar path).
            KernelFunction::Gaussian { h } => {
                let d2 = hkrr_linalg::dense_backend().sq_distance(x, y);
                (-d2 / (2.0 * h * h)).exp()
            }
            KernelFunction::Laplacian { h } => {
                let d = hkrr_linalg::dense_backend().sq_distance(x, y).sqrt();
                (-d / h).exp()
            }
            KernelFunction::Polynomial { degree, c } => {
                let dot: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
                (dot + c).powi(degree as i32)
            }
            KernelFunction::Linear => x.iter().zip(y.iter()).map(|(a, b)| a * b).sum(),
        }
    }

    /// Evaluates the kernel from a precomputed squared distance (only valid
    /// for radial kernels).
    ///
    /// # Panics
    /// Panics for non-radial kernels.
    #[inline]
    pub fn evaluate_from_sq_dist(&self, d2: f64) -> f64 {
        match *self {
            KernelFunction::Gaussian { h } => (-d2 / (2.0 * h * h)).exp(),
            KernelFunction::Laplacian { h } => (-d2.sqrt() / h).exp(),
            _ => panic!("evaluate_from_sq_dist is only defined for radial kernels"),
        }
    }

    /// Whether the kernel depends only on the distance `||x - y||`.
    pub fn is_radial(&self) -> bool {
        matches!(
            self,
            KernelFunction::Gaussian { .. } | KernelFunction::Laplacian { .. }
        )
    }

    /// Returns the bandwidth for radial kernels.
    pub fn bandwidth(&self) -> Option<f64> {
        match *self {
            KernelFunction::Gaussian { h } | KernelFunction::Laplacian { h } => Some(h),
            _ => None,
        }
    }

    /// Returns a copy of this kernel with a different bandwidth (radial
    /// kernels only); non-radial kernels are returned unchanged.
    pub fn with_bandwidth(&self, h: f64) -> Self {
        match *self {
            KernelFunction::Gaussian { .. } => KernelFunction::Gaussian { h },
            KernelFunction::Laplacian { .. } => KernelFunction::Laplacian { h },
            other => other,
        }
    }
}

/// Squared Euclidean distance between two points (scalar reference
/// implementation; the bulk paths go through
/// [`hkrr_linalg::dense_backend`] instead).
#[inline]
pub fn squared_distance(x: &[f64], y: &[f64]) -> f64 {
    let mut s = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let d = a - b;
        s += d * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_kernel_at_zero_distance_is_one() {
        let k = KernelFunction::gaussian(1.0);
        let x = vec![1.0, 2.0, 3.0];
        assert!((k.evaluate(&x, &x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn gaussian_kernel_decays_with_distance() {
        let k = KernelFunction::gaussian(1.0);
        let o = vec![0.0, 0.0];
        let near = k.evaluate(&o, &[0.5, 0.0]);
        let far = k.evaluate(&o, &[3.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
        // exact value: exp(-9/2)
        assert!((far - (-4.5_f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn gaussian_bandwidth_limits() {
        // h -> 0: K approaches identity (off-diagonal entries vanish).
        let k_small = KernelFunction::gaussian(1e-3);
        assert!(k_small.evaluate(&[0.0], &[1.0]) < 1e-100);
        // h -> infinity: K approaches the all-ones matrix.
        let k_large = KernelFunction::gaussian(1e6);
        assert!((k_large.evaluate(&[0.0], &[1.0]) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gaussian_is_symmetric() {
        let k = KernelFunction::gaussian(2.0);
        let x = vec![1.0, -2.0, 0.5];
        let y = vec![0.0, 4.0, 2.0];
        assert_eq!(k.evaluate(&x, &y), k.evaluate(&y, &x));
    }

    #[test]
    fn laplacian_kernel_values() {
        let k = KernelFunction::Laplacian { h: 2.0 };
        assert!((k.evaluate(&[0.0], &[0.0]) - 1.0).abs() < 1e-15);
        assert!((k.evaluate(&[0.0], &[2.0]) - (-1.0_f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn polynomial_and_linear_kernels() {
        let p = KernelFunction::Polynomial { degree: 2, c: 1.0 };
        assert_eq!(p.evaluate(&[1.0, 2.0], &[3.0, 4.0]), (11.0 + 1.0) * 12.0);
        let l = KernelFunction::Linear;
        assert_eq!(l.evaluate(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn radial_classification() {
        assert!(KernelFunction::gaussian(1.0).is_radial());
        assert!(KernelFunction::Laplacian { h: 1.0 }.is_radial());
        assert!(!KernelFunction::Linear.is_radial());
        assert_eq!(KernelFunction::gaussian(3.0).bandwidth(), Some(3.0));
        assert_eq!(KernelFunction::Linear.bandwidth(), None);
    }

    #[test]
    fn evaluate_from_sq_dist_matches_evaluate() {
        let k = KernelFunction::gaussian(1.5);
        let x = vec![1.0, 2.0];
        let y = vec![-1.0, 0.5];
        let d2 = squared_distance(&x, &y);
        assert!((k.evaluate(&x, &y) - k.evaluate_from_sq_dist(d2)).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn from_sq_dist_panics_for_linear() {
        KernelFunction::Linear.evaluate_from_sq_dist(1.0);
    }

    #[test]
    #[should_panic]
    fn gaussian_requires_positive_bandwidth() {
        let _ = KernelFunction::gaussian(0.0);
    }

    #[test]
    fn with_bandwidth_changes_only_radial() {
        let g = KernelFunction::gaussian(1.0).with_bandwidth(2.0);
        assert_eq!(g.bandwidth(), Some(2.0));
        let l = KernelFunction::Linear.with_bandwidth(2.0);
        assert_eq!(l, KernelFunction::Linear);
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[], &[]), 0.0);
    }
}
