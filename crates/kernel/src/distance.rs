//! Pairwise-distance helpers shared by the clustering algorithms and the
//! kernel-matrix assembly.
//!
//! The bulk forms route through the active
//! [`DenseBackend`](hkrr_linalg::DenseBackend), so they pick up the SIMD
//! distance kernels wherever the host supports them.  The buffer-reusing
//! `*_into` variants are the primary API; the allocating wrappers remain
//! for tests and one-shot callers.

use hkrr_linalg::{dense_backend, Matrix};

/// Squared Euclidean distance between row `i` and row `j` of `points`.
#[inline]
pub fn row_distance_sq(points: &Matrix, i: usize, j: usize) -> f64 {
    dense_backend().sq_distance(points.row(i), points.row(j))
}

/// Full pairwise squared-distance matrix (`n x n`).
///
/// Only used on small inputs (agglomerative clustering, diagnostics); the
/// scalable paths never materialize it.
pub fn pairwise_sq_distances(points: &Matrix) -> Matrix {
    let n = points.nrows();
    let mut d = Matrix::zeros(n, n);
    pairwise_sq_distances_into(points, points, &mut d);
    d
}

/// All-pairs squared distances `out[i,j] = ‖x_i − y_j‖²` into a
/// caller-provided `x.nrows() × y.nrows()` buffer, overwriting it.
pub fn pairwise_sq_distances_into(x: &Matrix, y: &Matrix, out: &mut Matrix) {
    dense_backend().sq_dists_into(x, y, out);
}

/// Squared distances from every row of `points` to a single `center`.
pub fn distances_to_center(points: &Matrix, center: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; points.nrows()];
    distances_to_center_into(points, center, &mut out);
    out
}

/// Squared distances from every row of `points` to `center`, into a
/// caller-provided buffer of length `points.nrows()`, overwriting it.
pub fn distances_to_center_into(points: &Matrix, center: &[f64], out: &mut [f64]) {
    dense_backend().dists_to_point_into(points, center, out);
}

/// Centroid (mean point) of the selected rows.
pub fn centroid(points: &Matrix, idx: &[usize]) -> Vec<f64> {
    let d = points.ncols();
    let mut c = vec![0.0; d];
    if idx.is_empty() {
        return c;
    }
    for &i in idx {
        for (cd, &x) in c.iter_mut().zip(points.row(i).iter()) {
            *cd += x;
        }
    }
    let inv = 1.0 / idx.len() as f64;
    for cd in c.iter_mut() {
        *cd *= inv;
    }
    c
}

/// Per-coordinate mean and spread (max - min) of the selected rows.
///
/// Used by the k-d tree ordering to pick the splitting dimension.
pub fn coordinate_stats(points: &Matrix, idx: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let d = points.ncols();
    let mut mean = vec![0.0; d];
    let mut min = vec![f64::INFINITY; d];
    let mut max = vec![f64::NEG_INFINITY; d];
    for &i in idx {
        for (k, &x) in points.row(i).iter().enumerate() {
            mean[k] += x;
            if x < min[k] {
                min[k] = x;
            }
            if x > max[k] {
                max[k] = x;
            }
        }
    }
    let inv = if idx.is_empty() {
        0.0
    } else {
        1.0 / idx.len() as f64
    };
    for m in mean.iter_mut() {
        *m *= inv;
    }
    let spread: Vec<f64> = (0..d)
        .map(|k| if idx.is_empty() { 0.0 } else { max[k] - min[k] })
        .collect();
    (mean, spread)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 4.0],
        ])
    }

    #[test]
    fn row_distance_matches_manual() {
        let p = sample_points();
        assert_eq!(row_distance_sq(&p, 0, 1), 1.0);
        assert_eq!(row_distance_sq(&p, 0, 3), 25.0);
        assert_eq!(row_distance_sq(&p, 2, 2), 0.0);
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let p = sample_points();
        let d = pairwise_sq_distances(&p);
        assert!(d.is_symmetric(1e-15));
        for i in 0..4 {
            assert_eq!(d[(i, i)], 0.0);
        }
        assert_eq!(d[(0, 3)], 25.0);
    }

    #[test]
    fn distances_to_center_matches_rowwise() {
        let p = sample_points();
        let c = vec![1.0, 1.0];
        let d = distances_to_center(&p, &c);
        assert_eq!(d, vec![2.0, 1.0, 2.0, 13.0]);
    }

    #[test]
    fn centroid_of_subset() {
        let p = sample_points();
        let c = centroid(&p, &[0, 1]);
        assert_eq!(c, vec![0.5, 0.0]);
        let all = centroid(&p, &[0, 1, 2, 3]);
        assert_eq!(all, vec![1.0, 1.5]);
        assert_eq!(centroid(&p, &[]), vec![0.0, 0.0]);
    }

    #[test]
    fn coordinate_stats_mean_and_spread() {
        let p = sample_points();
        let (mean, spread) = coordinate_stats(&p, &[0, 1, 2, 3]);
        assert_eq!(mean, vec![1.0, 1.5]);
        assert_eq!(spread, vec![3.0, 4.0]);
        let (_, spread_sub) = coordinate_stats(&p, &[0, 1]);
        assert_eq!(spread_sub, vec![1.0, 0.0]);
    }
}
