//! Feature normalization.
//!
//! The paper normalizes every dataset to zero mean and unit standard
//! deviation per column and reports that skipping this step (or normalizing
//! to unit maximum absolute value instead) noticeably degrades accuracy.
//! Both schemes are provided so the ablation can be reproduced.

use hkrr_linalg::Matrix;

/// Normalization scheme applied column-wise to the data matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalizer {
    /// Zero mean, unit standard deviation per column (the paper's default).
    ZScore,
    /// Scale each column to maximum absolute value one.
    MaxAbs,
    /// Leave the data untouched.
    None,
}

/// Per-column statistics fitted on the training set, applied to train and
/// test alike so the two live in the same feature space.
#[derive(Debug, Clone)]
pub struct NormalizationStats {
    scheme: Normalizer,
    /// Per-column offsets subtracted from the data.
    offset: Vec<f64>,
    /// Per-column scales the data is divided by (always non-zero).
    scale: Vec<f64>,
}

impl NormalizationStats {
    /// Fits the chosen scheme on the training data.
    pub fn fit(train: &Matrix, scheme: Normalizer) -> Self {
        let d = train.ncols();
        let n = train.nrows().max(1);
        let mut offset = vec![0.0; d];
        let mut scale = vec![1.0; d];
        match scheme {
            Normalizer::None => {}
            Normalizer::ZScore => {
                for j in 0..d {
                    let mean: f64 =
                        (0..train.nrows()).map(|i| train[(i, j)]).sum::<f64>() / n as f64;
                    let var: f64 = (0..train.nrows())
                        .map(|i| {
                            let x = train[(i, j)] - mean;
                            x * x
                        })
                        .sum::<f64>()
                        / n as f64;
                    offset[j] = mean;
                    scale[j] = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
                }
            }
            Normalizer::MaxAbs => {
                for j in 0..d {
                    let m = (0..train.nrows())
                        .map(|i| train[(i, j)].abs())
                        .fold(0.0_f64, f64::max);
                    scale[j] = if m > 1e-12 { m } else { 1.0 };
                }
            }
        }
        NormalizationStats {
            scheme,
            offset,
            scale,
        }
    }

    /// Rebuilds fitted statistics from their stored parts (the inverse of
    /// the [`NormalizationStats::offset`] / [`NormalizationStats::scale`]
    /// accessors), used when a model is restored from disk.
    pub fn from_parts(
        scheme: Normalizer,
        offset: Vec<f64>,
        scale: Vec<f64>,
    ) -> Result<Self, String> {
        if offset.len() != scale.len() {
            return Err(format!(
                "offset has {} entries, scale has {}",
                offset.len(),
                scale.len()
            ));
        }
        // `fit` only ever produces strictly positive scales (a standard
        // deviation or max-abs, floored at 1.0): a zero, negative or
        // non-finite scale can only come from a corrupted or hand-crafted
        // model file, and a negative one would silently flip feature signs.
        if scale.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err("scales must be finite and strictly positive".to_string());
        }
        Ok(NormalizationStats {
            scheme,
            offset,
            scale,
        })
    }

    /// The scheme these statistics were fitted with.
    pub fn scheme(&self) -> Normalizer {
        self.scheme
    }

    /// Per-column offsets subtracted from the data.
    pub fn offset(&self) -> &[f64] {
        &self.offset
    }

    /// Per-column scales the data is divided by.
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// Feature dimension the statistics were fitted on.
    pub fn dim(&self) -> usize {
        self.offset.len()
    }

    /// Applies the fitted transform to a data matrix (train or test).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.ncols(),
            self.offset.len(),
            "NormalizationStats::transform: dimension mismatch"
        );
        Matrix::from_fn(data.nrows(), data.ncols(), |i, j| {
            (data[(i, j)] - self.offset[j]) / self.scale[j]
        })
    }

    /// Convenience: fit on `train` and transform both `train` and `test`.
    pub fn fit_transform(
        train: &Matrix,
        test: &Matrix,
        scheme: Normalizer,
    ) -> (Matrix, Matrix, NormalizationStats) {
        let stats = NormalizationStats::fit(train, scheme);
        (stats.transform(train), stats.transform(test), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_linalg::random::{gaussian_matrix, Pcg64};

    #[test]
    fn zscore_gives_zero_mean_unit_std() {
        let mut rng = Pcg64::seed_from_u64(1);
        let mut data = gaussian_matrix(&mut rng, 500, 4);
        // Skew the columns so the transform has real work to do.
        for i in 0..500 {
            data[(i, 0)] = data[(i, 0)] * 5.0 + 10.0;
            data[(i, 2)] = data[(i, 2)] * 0.1 - 3.0;
        }
        let stats = NormalizationStats::fit(&data, Normalizer::ZScore);
        let t = stats.transform(&data);
        for j in 0..4 {
            let mean: f64 = (0..500).map(|i| t[(i, j)]).sum::<f64>() / 500.0;
            let var: f64 = (0..500).map(|i| (t[(i, j)] - mean).powi(2)).sum::<f64>() / 500.0;
            assert!(mean.abs() < 1e-10, "column {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-10, "column {j} var {var}");
        }
    }

    #[test]
    fn maxabs_bounds_columns_by_one() {
        let data = Matrix::from_rows(&[vec![2.0, -8.0], vec![-4.0, 4.0], vec![1.0, 2.0]]);
        let stats = NormalizationStats::fit(&data, Normalizer::MaxAbs);
        let t = stats.transform(&data);
        assert!(t.data().iter().all(|&x| x.abs() <= 1.0 + 1e-15));
        assert_eq!(t[(1, 0)], -1.0);
        assert_eq!(t[(0, 1)], -1.0);
    }

    #[test]
    fn none_is_identity() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let stats = NormalizationStats::fit(&data, Normalizer::None);
        assert!(stats.transform(&data).approx_eq(&data, 0.0));
        assert_eq!(stats.scheme(), Normalizer::None);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let data = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]);
        let stats = NormalizationStats::fit(&data, Normalizer::ZScore);
        let t = stats.transform(&data);
        assert!(t.data().iter().all(|x| x.is_finite()));
        // Constant column maps to zero.
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(2, 0)], 0.0);
    }

    #[test]
    fn test_set_uses_train_statistics() {
        let train = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![4.0]]);
        let test = Matrix::from_rows(&[vec![6.0]]);
        let (_, test_t, stats) =
            NormalizationStats::fit_transform(&train, &test, Normalizer::ZScore);
        // Train mean is 2, std is sqrt(8/3).
        let expected = (6.0 - 2.0) / (8.0_f64 / 3.0).sqrt();
        assert!((test_t[(0, 0)] - expected).abs() < 1e-12);
        assert_eq!(stats.scheme(), Normalizer::ZScore);
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut rng = Pcg64::seed_from_u64(4);
        let data = gaussian_matrix(&mut rng, 40, 3);
        let stats = NormalizationStats::fit(&data, Normalizer::ZScore);
        let rebuilt = NormalizationStats::from_parts(
            stats.scheme(),
            stats.offset().to_vec(),
            stats.scale().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.dim(), 3);
        // Bitwise-identical transforms: same offsets, same scales.
        assert!(rebuilt
            .transform(&data)
            .approx_eq(&stats.transform(&data), 0.0));

        assert!(NormalizationStats::from_parts(Normalizer::ZScore, vec![0.0], vec![]).is_err());
        assert!(NormalizationStats::from_parts(Normalizer::ZScore, vec![0.0], vec![0.0]).is_err());
        assert!(
            NormalizationStats::from_parts(Normalizer::ZScore, vec![0.0], vec![f64::NAN]).is_err()
        );
        // Negative scales would silently flip feature signs: `fit` can
        // never produce them, so `from_parts` must refuse them too.
        assert!(NormalizationStats::from_parts(Normalizer::ZScore, vec![0.0], vec![-1.0]).is_err());
        assert!(NormalizationStats::from_parts(
            Normalizer::ZScore,
            vec![0.0, 0.0],
            vec![1.0, -1e-300]
        )
        .is_err());
        assert!(NormalizationStats::from_parts(
            Normalizer::ZScore,
            vec![0.0],
            vec![f64::NEG_INFINITY]
        )
        .is_err());
    }

    #[test]
    #[should_panic]
    fn transform_rejects_wrong_dimension() {
        let train = Matrix::zeros(3, 2);
        let stats = NormalizationStats::fit(&train, Normalizer::ZScore);
        let _ = stats.transform(&Matrix::zeros(3, 5));
    }
}
