//! The partially matrix-free kernel-matrix operator.

use crate::kernels::KernelFunction;
use hkrr_linalg::{LinearOperator, Matrix};
use rayon::prelude::*;

/// The kernel matrix `K_ij = K(x_i, x_j)` of a set of training points,
/// exposed through entry access and parallel matvecs without storing the
/// `n x n` matrix.
///
/// Reordering the training points (Step 0 of Algorithm 1) is done by
/// constructing the `KernelMatrix` from the permuted point set, so every
/// downstream consumer (HSS construction, H-matrix construction, dense
/// baseline) automatically sees the permuted matrix.
#[derive(Debug, Clone)]
pub struct KernelMatrix {
    points: Matrix,
    kernel: KernelFunction,
}

impl KernelMatrix {
    /// Creates the operator from an `n x d` matrix of data points (rows are
    /// points) and a kernel function.
    pub fn new(points: Matrix, kernel: KernelFunction) -> Self {
        KernelMatrix { points, kernel }
    }

    /// Number of data points `n`.
    pub fn len(&self) -> usize {
        self.points.nrows()
    }

    /// Returns `true` when there are no data points.
    pub fn is_empty(&self) -> bool {
        self.points.nrows() == 0
    }

    /// Dimension `d` of the data points.
    pub fn dim(&self) -> usize {
        self.points.ncols()
    }

    /// The kernel function.
    pub fn kernel(&self) -> KernelFunction {
        self.kernel
    }

    /// The underlying data points.
    pub fn points(&self) -> &Matrix {
        &self.points
    }

    /// Returns a new operator over the same points with a different
    /// bandwidth (cheap: the points are cloned, nothing is assembled).
    pub fn with_bandwidth(&self, h: f64) -> Self {
        KernelMatrix {
            points: self.points.clone(),
            kernel: self.kernel.with_bandwidth(h),
        }
    }

    /// Returns the operator over a permuted copy of the points, i.e. the
    /// symmetrically permuted kernel matrix `K(perm, perm)`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        KernelMatrix {
            points: self.points.select_rows(perm),
            kernel: self.kernel,
        }
    }

    /// Assembles the dense kernel matrix (baseline path / small problems).
    ///
    /// Radial kernels assemble in two bulk passes — the backend's all-pairs
    /// squared distances, then the radial map in place — which matches the
    /// per-entry path bitwise (same distance kernel, same evaluation).
    pub fn assemble_dense(&self) -> Matrix {
        let n = self.len();
        let mut k = Matrix::zeros(n, n);
        let kernel = self.kernel;
        let points = &self.points;
        if kernel.is_radial() {
            crate::distance::pairwise_sq_distances_into(points, points, &mut k);
            k.data_mut().par_chunks_mut(n.max(1)).for_each(|row| {
                for v in row.iter_mut() {
                    *v = kernel.evaluate_from_sq_dist(*v);
                }
            });
            return k;
        }
        k.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| {
                let xi = points.row(i);
                for (j, v) in row.iter_mut().enumerate() {
                    *v = kernel.evaluate(xi, points.row(j));
                }
            });
        k
    }

    /// Assembles the dense `K + λI` matrix.
    pub fn assemble_regularized(&self, lambda: f64) -> Matrix {
        let mut k = self.assemble_dense();
        k.shift_diagonal(lambda);
        k
    }
}

impl LinearOperator for KernelMatrix {
    fn nrows(&self) -> usize {
        self.len()
    }

    fn ncols(&self) -> usize {
        self.len()
    }

    #[inline]
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.kernel.evaluate(self.points.row(i), self.points.row(j))
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "KernelMatrix::matvec: x length");
        assert_eq!(y.len(), self.len(), "KernelMatrix::matvec: y length");
        let points = &self.points;
        let kernel = self.kernel;
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let xi = points.row(i);
            let mut s = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                if xj != 0.0 {
                    s += kernel.evaluate(xi, points.row(j)) * xj;
                }
            }
            *yi = s;
        });
    }

    fn rmatvec(&self, x: &[f64], y: &mut [f64]) {
        // The kernel matrix is symmetric.
        self.matvec(x, y);
    }

    fn sub_block(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), cols.len());
        let kernel = self.kernel;
        let points = &self.points;
        out.data_mut()
            .par_chunks_mut(cols.len().max(1))
            .enumerate()
            .for_each(|(oi, row)| {
                if oi >= rows.len() {
                    return;
                }
                let xi = points.row(rows[oi]);
                for (oj, v) in row.iter_mut().enumerate() {
                    *v = kernel.evaluate(xi, points.row(cols[oj]));
                }
            });
        out
    }
}

/// The rectangular cross-kernel `K'(i, j) = K(x'_i, x_j)` between test
/// points `x'` and training points `x` (Step 3 of Algorithm 1).
#[derive(Debug, Clone)]
pub struct CrossKernel {
    test_points: Matrix,
    train_points: Matrix,
    kernel: KernelFunction,
}

impl CrossKernel {
    /// Creates the cross-kernel operator (`m x n`: test rows, train cols).
    pub fn new(test_points: Matrix, train_points: Matrix, kernel: KernelFunction) -> Self {
        assert_eq!(
            test_points.ncols(),
            train_points.ncols(),
            "CrossKernel: test and train dimension mismatch"
        );
        CrossKernel {
            test_points,
            train_points,
            kernel,
        }
    }

    /// Number of test points.
    pub fn num_test(&self) -> usize {
        self.test_points.nrows()
    }

    /// Number of training points.
    pub fn num_train(&self) -> usize {
        self.train_points.nrows()
    }

    /// The kernel vector of test point `i` against all training points.
    pub fn kernel_vector(&self, i: usize) -> Vec<f64> {
        let xi = self.test_points.row(i);
        (0..self.num_train())
            .map(|j| self.kernel.evaluate(xi, self.train_points.row(j)))
            .collect()
    }

    /// All predictions `K' w` for a weight vector `w`, in parallel over the
    /// test points.
    pub fn predict_scores(&self, w: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_test()];
        self.predict_scores_into(w, &mut out);
        out
    }

    /// [`CrossKernel::predict_scores`] into a caller-provided buffer, so hot
    /// serving paths can reuse allocations across batches.
    pub fn predict_scores_into(&self, w: &[f64], out: &mut [f64]) {
        cross_scores_into(&self.test_points, &self.train_points, self.kernel, w, out);
    }
}

/// Batched cross-kernel scores `out_i = Σ_j K(test_i, train_j) w_j` against
/// borrowed point sets — the allocation-free core of prediction. Parallel
/// over the test rows; per-row arithmetic is the sequential `j` order, so
/// results are bitwise identical to a scalar loop (and across thread
/// counts).
///
/// # Panics
/// Panics when the point dimensions, weight length, or output length are
/// inconsistent.
pub fn cross_scores_into(
    test_points: &Matrix,
    train_points: &Matrix,
    kernel: KernelFunction,
    w: &[f64],
    out: &mut [f64],
) {
    assert_eq!(
        test_points.ncols(),
        train_points.ncols(),
        "cross_scores_into: test and train dimension mismatch"
    );
    assert_eq!(
        w.len(),
        train_points.nrows(),
        "cross_scores_into: weight length"
    );
    assert_eq!(
        out.len(),
        test_points.nrows(),
        "cross_scores_into: output length"
    );
    out.par_iter_mut().enumerate().for_each(|(i, oi)| {
        let xi = test_points.row(i);
        let mut s = 0.0;
        for (j, &wj) in w.iter().enumerate() {
            s += kernel.evaluate(xi, train_points.row(j)) * wj;
        }
        *oi = s;
    });
}

impl LinearOperator for CrossKernel {
    fn nrows(&self) -> usize {
        self.num_test()
    }

    fn ncols(&self) -> usize {
        self.num_train()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        self.kernel
            .evaluate(self.test_points.row(i), self.train_points.row(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_linalg::random::{gaussian_matrix, Pcg64};
    use hkrr_linalg::{blas, cholesky};

    fn random_points(seed: u64, n: usize, d: usize) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        gaussian_matrix(&mut rng, n, d)
    }

    #[test]
    fn kernel_matrix_is_symmetric_with_unit_diagonal() {
        let km = KernelMatrix::new(random_points(1, 30, 4), KernelFunction::gaussian(1.0));
        let k = km.assemble_dense();
        assert!(k.is_symmetric(1e-14));
        for i in 0..30 {
            assert!((k[(i, i)] - 1.0).abs() < 1e-14);
        }
        assert!(k.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn entry_matches_assembled_matrix() {
        let km = KernelMatrix::new(random_points(2, 15, 3), KernelFunction::gaussian(0.7));
        let k = km.assemble_dense();
        for i in 0..15 {
            for j in 0..15 {
                assert!((km.entry(i, j) - k[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn matvec_matches_dense_gemv() {
        let km = KernelMatrix::new(random_points(3, 40, 5), KernelFunction::gaussian(1.5));
        let k = km.assemble_dense();
        let mut rng = Pcg64::seed_from_u64(4);
        let x: Vec<f64> = (0..40).map(|_| rng.next_gaussian()).collect();
        let mut y1 = vec![0.0; 40];
        let mut y2 = vec![0.0; 40];
        km.matvec(&x, &mut y1);
        blas::gemv(&k, &x, &mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-11);
        }
        let mut y3 = vec![0.0; 40];
        km.rmatvec(&x, &mut y3);
        assert_eq!(y1, y3);
    }

    #[test]
    fn regularized_kernel_is_positive_definite() {
        let km = KernelMatrix::new(random_points(5, 25, 3), KernelFunction::gaussian(1.0));
        let k = km.assemble_regularized(1e-3);
        assert!(cholesky::cholesky(&k).is_ok());
    }

    #[test]
    fn permuted_operator_matches_symmetric_permutation() {
        let km = KernelMatrix::new(random_points(6, 12, 2), KernelFunction::gaussian(1.0));
        let k = km.assemble_dense();
        let perm: Vec<usize> = vec![5, 0, 7, 2, 9, 4, 11, 6, 1, 8, 3, 10];
        let kp = km.permuted(&perm).assemble_dense();
        assert!(kp.approx_eq(&k.permute_symmetric(&perm), 1e-14));
    }

    #[test]
    fn with_bandwidth_changes_offdiagonal_decay() {
        let km = KernelMatrix::new(random_points(7, 20, 3), KernelFunction::gaussian(1.0));
        let k_narrow = km.with_bandwidth(0.1).assemble_dense();
        let k_wide = km.with_bandwidth(10.0).assemble_dense();
        // Narrow bandwidth: near-identity; wide: near all-ones.
        let off_narrow: f64 = (0..20)
            .flat_map(|i| (0..20).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| k_narrow[(i, j)])
            .sum();
        let off_wide: f64 = (0..20)
            .flat_map(|i| (0..20).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| k_wide[(i, j)])
            .sum();
        assert!(off_narrow < 1.0);
        assert!(off_wide > 300.0);
    }

    #[test]
    fn sub_block_extracts_kernel_entries() {
        let km = KernelMatrix::new(random_points(8, 10, 2), KernelFunction::gaussian(1.0));
        let b = km.sub_block(&[0, 3, 5], &[1, 2]);
        assert_eq!(b.shape(), (3, 2));
        assert!((b[(1, 0)] - km.entry(3, 1)).abs() < 1e-15);
    }

    #[test]
    fn cross_kernel_entries_and_prediction() {
        let train = random_points(9, 20, 3);
        let test = random_points(10, 5, 3);
        let ck = CrossKernel::new(test.clone(), train.clone(), KernelFunction::gaussian(1.0));
        assert_eq!(ck.num_test(), 5);
        assert_eq!(ck.num_train(), 20);
        let kv = ck.kernel_vector(2);
        assert_eq!(kv.len(), 20);
        assert!((kv[7] - ck.entry(2, 7)).abs() < 1e-15);

        let mut rng = Pcg64::seed_from_u64(11);
        let w: Vec<f64> = (0..20).map(|_| rng.next_gaussian()).collect();
        let scores = ck.predict_scores(&w);
        for i in 0..5 {
            let manual = blas::dot(&ck.kernel_vector(i), &w);
            assert!((scores[i] - manual).abs() < 1e-12);
        }

        // The buffer-reusing path is the same arithmetic, bitwise.
        let mut buf = vec![f64::NAN; 5];
        ck.predict_scores_into(&w, &mut buf);
        assert_eq!(buf, scores);
        let mut free = vec![0.0; 5];
        cross_scores_into(&test, &train, KernelFunction::gaussian(1.0), &w, &mut free);
        assert_eq!(free, scores);
    }

    #[test]
    #[should_panic]
    fn cross_scores_into_rejects_bad_output_length() {
        let train = random_points(9, 20, 3);
        let test = random_points(10, 5, 3);
        let w = vec![0.0; 20];
        let mut out = vec![0.0; 4];
        cross_scores_into(&test, &train, KernelFunction::gaussian(1.0), &w, &mut out);
    }

    #[test]
    #[should_panic]
    fn cross_kernel_rejects_dimension_mismatch() {
        let _ = CrossKernel::new(
            Matrix::zeros(3, 2),
            Matrix::zeros(5, 4),
            KernelFunction::gaussian(1.0),
        );
    }

    #[test]
    fn kernel_matrix_accessors() {
        let km = KernelMatrix::new(random_points(12, 6, 4), KernelFunction::gaussian(2.0));
        assert_eq!(km.len(), 6);
        assert_eq!(km.dim(), 4);
        assert!(!km.is_empty());
        assert_eq!(km.kernel().bandwidth(), Some(2.0));
        assert_eq!(LinearOperator::nrows(&km), 6);
        assert_eq!(LinearOperator::ncols(&km), 6);
    }
}
