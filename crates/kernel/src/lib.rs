//! # hkrr-kernel
//!
//! Kernel functions, pairwise-distance utilities and the *partially
//! matrix-free* kernel-matrix operator used by the hierarchical solvers.
//!
//! The central type is [`KernelMatrix`]: it holds the (reordered) training
//! points and a [`KernelFunction`] and exposes the kernel matrix
//! `K_ij = K(x_i, x_j)` through the [`hkrr_linalg::LinearOperator`] trait —
//! individual entries and parallel matrix-vector products — without ever
//! storing the full `n x n` matrix.  This mirrors the interface STRUMPACK's
//! randomized HSS construction consumes.
//!
//! Radial kernel evaluation and the bulk distance helpers in [`distance`]
//! route through the active [`hkrr_linalg::DenseBackend`], so they pick up
//! the SIMD substrate on hosts that support it.

#![warn(missing_docs)]

pub mod distance;
pub mod kernel_matrix;
pub mod kernels;
pub mod normalize;

pub use distance::{distances_to_center_into, pairwise_sq_distances_into};
pub use kernel_matrix::{cross_scores_into, CrossKernel, KernelMatrix};
pub use kernels::KernelFunction;
pub use normalize::{NormalizationStats, Normalizer};
