//! Offline stand-in for [rayon](https://docs.rs/rayon), covering exactly the
//! API subset this workspace uses: `par_iter` / `par_iter_mut` /
//! `par_chunks_mut` on slices, `into_par_iter` on index ranges, the
//! `map` / `enumerate` / `for_each` / `collect` / `sum` / `with_min_len`
//! adaptors on those, and `ThreadPoolBuilder::install` for pinning a thread
//! count.
//!
//! Unlike rayon's work-stealing deques, this shim statically partitions each
//! parallel call across scoped `std::thread` workers. That is a good fit for
//! the uniform, data-parallel loops in the linear-algebra and kernel-matrix
//! hot paths (GEMM/GEMV rows, pairwise distances, per-block compressions),
//! at the cost of load balancing for skewed workloads. The build exists so
//! the workspace compiles in an offline container; substituting the real
//! crate is a one-line edit of `[workspace.dependencies]` in the root
//! manifest and everything here keeps the same call-site syntax.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; 0 = no
    /// override. Thread-local so concurrent `install`s (e.g. `cargo test`
    /// running `#[test]`s in parallel threads) cannot observe each other.
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Default items-per-worker floor, so tiny loops do not pay thread-spawn
/// latency. Coarse-grained callers (one heavy task per item, e.g. one HSS
/// node compression) lower it with `with_min_len(1)`.
const MIN_ITEMS_PER_THREAD: usize = 64;

/// The number of worker threads a parallel call issued from the current
/// thread may use.
pub fn current_num_threads() -> usize {
    match POOL_OVERRIDE.get() {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

fn threads_for(len: usize) -> usize {
    threads_for_min(len, MIN_ITEMS_PER_THREAD)
}

fn threads_for_min(len: usize, min_len: usize) -> usize {
    current_num_threads()
        .min(len.div_ceil(min_len.max(1)))
        .max(1)
}

/// Splits `0..len` into `parts` contiguous ranges of near-equal size.
fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Marks the current thread as a pool worker: nested parallel calls issued
/// from inside a worker run sequentially instead of spawning another
/// full-width set of threads (real rayon reuses its one pool for nested
/// work; without this, nested `par_iter`s would oversubscribe the machine
/// quadratically and escape any [`ThreadPool::install`] cap).
fn mark_worker() {
    POOL_OVERRIDE.set(1);
}

/// Runs `f(i)` for every `i in 0..len` across worker threads and returns the
/// results in index order. `min_len` is the items-per-worker floor.
fn run_indexed<R, F>(len: usize, min_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads_for_min(len, min_len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = chunk_ranges(len, threads)
            .into_iter()
            .map(|r| {
                s.spawn(move || {
                    mark_worker();
                    r.map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
    });
    out.into_iter().flatten().collect()
}

/// Everything call sites need, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Source traits (the `par_iter` / `into_par_iter` entry points)
// ---------------------------------------------------------------------------

/// `into_par_iter()` on owned containers; implemented for index ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator this container converts into.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            range: self,
            min_len: MIN_ITEMS_PER_THREAD,
        }
    }
}

/// `par_iter()` on shared slices (and anything that derefs to one).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// Borrows `self` as a parallel iterator over `&Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            slice: self,
            min_len: MIN_ITEMS_PER_THREAD,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            slice: self,
            min_len: MIN_ITEMS_PER_THREAD,
        }
    }
}

/// `par_iter_mut()` on exclusive slices (and anything that derefs to one).
pub trait IntoParallelRefMutIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// Borrows `self` as a parallel iterator over `&mut Item`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// `par_chunks_mut()` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits `self` into `size`-sized mutable chunks processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { slice: self, size }
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators and adaptors
// ---------------------------------------------------------------------------

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
    min_len: usize,
}

impl ParRange {
    /// Sets the minimum number of indices processed per worker thread
    /// (mirrors rayon's `IndexedParallelIterator::with_min_len`). Use `1`
    /// when every index is a coarse task worth its own thread.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps every index through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> MapRange<R, F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        MapRange {
            range: self.range,
            min_len: self.min_len,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Runs `f` for every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        run_indexed(self.range.len(), self.min_len, |i| f(self.range.start + i));
    }
}

/// A mapped [`ParRange`].
pub struct MapRange<R, F> {
    range: Range<usize>,
    min_len: usize,
    f: F,
    _out: std::marker::PhantomData<fn() -> R>,
}

impl<R, F> MapRange<R, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Sets the minimum number of items processed per worker thread.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Collects the mapped values in index order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let start = self.range.start;
        let f = &self.f;
        run_indexed(self.range.len(), self.min_len, move |i| f(start + i))
            .into_iter()
            .collect()
    }

    /// Sums the mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.collect::<Vec<R>>().into_iter().sum()
    }
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Sets the minimum number of items processed per worker thread
    /// (mirrors rayon's `IndexedParallelIterator::with_min_len`). Use `1`
    /// when every item is a coarse task worth its own thread.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> MapSlice<'a, T, R, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        MapSlice {
            slice: self.slice,
            min_len: self.min_len,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Runs `f` for every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_indexed(self.slice.len(), self.min_len, |i| f(&self.slice[i]));
    }
}

/// A mapped [`ParIter`].
pub struct MapSlice<'a, T, R, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
    _out: std::marker::PhantomData<fn() -> R>,
}

impl<'a, T: Sync, R, F> MapSlice<'a, T, R, F>
where
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Sets the minimum number of items processed per worker thread.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Collects the mapped values in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = &self.f;
        let slice = self.slice;
        run_indexed(slice.len(), self.min_len, move |i| f(&slice[i]))
            .into_iter()
            .collect()
    }

    /// Sums the mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.collect::<Vec<R>>().into_iter().sum()
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { slice: self.slice }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        EnumerateMut { slice: self.slice }.for_each(|(_, item)| f(item));
    }
}

/// An enumerated [`ParIterMut`].
pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    /// Runs `f((index, &mut item))` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let len = self.slice.len();
        let threads = threads_for(len);
        if threads <= 1 {
            for (i, item) in self.slice.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = self.slice;
            let mut base = 0;
            for r in chunk_ranges(len, threads) {
                let (head, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let offset = base;
                base += head.len();
                s.spawn(move || {
                    mark_worker();
                    for (k, item) in head.iter_mut().enumerate() {
                        f((offset + k, item));
                    }
                });
            }
        });
    }
}

/// Parallel iterator over `size`-sized mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its chunk index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// An enumerated [`ParChunksMut`].
pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Runs `f((chunk_index, chunk))` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = self.slice.len().div_ceil(self.size.max(1));
        let threads = threads_for(self.slice.len()).min(n_chunks.max(1));
        if threads <= 1 {
            for (i, chunk) in self.slice.chunks_mut(self.size.max(1)).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // Deal chunks round-robin into one bucket per worker; chunk sizes are
        // uniform so this stays balanced without work stealing.
        let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, chunk) in self.slice.chunks_mut(self.size.max(1)).enumerate() {
            buckets[i % threads].push((i, chunk));
        }
        std::thread::scope(|s| {
            let f = &f;
            for bucket in buckets {
                s.spawn(move || {
                    mark_worker();
                    for (i, chunk) in bucket {
                        f((i, chunk));
                    }
                });
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Thread pools
// ---------------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot fail in
/// the shim, the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` worker threads (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count cap, mirroring `rayon::ThreadPool`.
///
/// The shim has no persistent workers: [`ThreadPool::install`] sets a
/// thread-local thread-count override for the duration of the closure, which
/// every parallel call issued from the calling thread consults. The override
/// is restored by an RAII guard, so it does not leak when `f` panics (e.g.
/// under `cargo test`, which catches test panics and reuses the thread).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previous override even if the installed closure panics.
struct OverrideGuard(usize);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        POOL_OVERRIDE.set(self.0);
    }
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the calling thread's cap.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = OverrideGuard(POOL_OVERRIDE.replace(self.num_threads));
        f()
    }

    /// The thread count this pool was built with (machine default if 0).
    pub fn current_num_threads(&self) -> usize {
        match self.num_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            mark_worker();
            b()
        });
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn par_iter_mut_enumerate_for_each() {
        let mut v = vec![0usize; 5000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        let mut v = vec![0u32; 1037];
        v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[1036], 1037u32.div_ceil(64));
    }

    #[test]
    fn with_min_len_keeps_order_on_tiny_inputs() {
        // Below the default 64-item floor the call would stay sequential;
        // with_min_len(1) forces a multi-thread split (where cores allow)
        // and the collected order must still match the input order.
        let ids = vec![3usize, 1, 4, 1, 5, 9, 2, 6];
        let doubled: Vec<usize> = ids.par_iter().with_min_len(1).map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10, 18, 4, 12]);
        let range: Vec<usize> = (10..14)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| i)
            .collect();
        assert_eq!(range, vec![10, 11, 12, 13]);
    }

    #[test]
    fn with_min_len_composes_after_map() {
        let v: Vec<usize> = (0..6)
            .into_par_iter()
            .map(|i| i * i)
            .with_min_len(1)
            .collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25]);
        let s: usize = vec![1usize, 2, 3]
            .par_iter()
            .map(|&x| x)
            .with_min_len(1)
            .sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn slice_map_sum_matches_sequential() {
        let v: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let s: f64 = v.par_iter().map(|&x| x * 0.5).sum();
        assert_eq!(s, v.iter().map(|&x| x * 0.5).sum::<f64>());
    }

    #[test]
    fn install_caps_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 2);
    }

    #[test]
    fn nested_parallel_calls_run_sequentially_inside_workers() {
        // Inner parallel calls issued from a worker thread must see a
        // thread budget of 1, so nesting cannot oversubscribe the machine.
        let observed: Vec<usize> = (0..2 * super::MIN_ITEMS_PER_THREAD)
            .into_par_iter()
            .map(|_| super::current_num_threads())
            .collect();
        // Multi-core: outer workers are marked and report 1. Single-core:
        // the call degrades to the sequential path, which also reports 1.
        assert!(observed.iter().all(|&n| n == 1), "observed {observed:?}");
    }

    #[test]
    fn install_restores_override_when_the_closure_panics() {
        let before = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(outcome.is_err());
        assert_eq!(super::current_num_threads(), before);
    }
}
