//! Offline stand-in for [criterion](https://docs.rs/criterion), covering the
//! API subset the workspace benches use: `Criterion::benchmark_group`, the
//! group knobs (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then `sample_size`
//! timed samples, reporting min/mean/max wall-clock per iteration to stdout.
//! There is no statistical outlier analysis, HTML report, or baseline
//! comparison; the shim exists so `cargo bench` compiles and runs in an
//! offline container, and CI only compile-checks the benches
//! (`cargo bench --no-run`). Swapping in the real crate is a one-line edit
//! of `[workspace.dependencies]` in the root manifest.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.run(&id.0, f);
        self
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        self.run(&id, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().0;
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group (report files are not produced by the shim).
    pub fn finish(self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        // Warm-up: run the routine until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }
        // Sampling: one iteration per sample, stopping early if the
        // measurement budget runs out.
        let mut times: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed);
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
        let n = times.len().max(1);
        let total: Duration = times.iter().sum();
        let mean = total / n as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        println!("{label:<48} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({n} samples)");
    }
}

/// Timer handle passed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive so the optimizer cannot
    /// delete the computation.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        let mut runs = 0usize;
        group.bench_function("add", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(runs >= 3, "expected warm-up plus samples, got {runs}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).to_string(), "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("inputs");
        group.sample_size(1);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &v| {
            seen = v;
            b.iter(|| black_box(v * 2));
        });
        assert_eq!(seen, 7);
    }
}
