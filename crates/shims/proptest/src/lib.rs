//! Offline stand-in for [proptest](https://docs.rs/proptest), covering the
//! API subset the workspace's property tests use: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, numeric-range strategies
//! (`lo..hi` on `usize`, `u64`, `i64`, `f64`), and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! build: inputs are drawn from a deterministic per-test SplitMix64 stream
//! (seeded from the test name), there is **no shrinking** — a failing case
//! reports the exact inputs that failed instead of a minimized one — and the
//! default case count is 32 rather than 256. Swapping in the real crate is a
//! one-line edit of `[workspace.dependencies]` in the root manifest.

use std::fmt::Write as _;
use std::ops::Range;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed (or rejected) test case, carrying the formatted reason.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic SplitMix64 stream used to draw inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type, mirroring `proptest::Strategy`.
///
/// Only what the numeric-range syntax (`lo..hi`) needs: every strategy can
/// sample a value; there is no value tree and no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty i64 range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Drives one property: draws inputs, runs the case, panics on failure.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the named property (the name seeds the input stream, so
    /// every property sees its own deterministic sequence).
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { config, seed, name }
    }

    /// Runs the property for every configured case.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            let mut rng = TestRng::new(self.seed ^ (u64::from(i) << 32));
            if let Err(e) = case(&mut rng) {
                panic!(
                    "property `{}` failed at case {}/{}: {}",
                    self.name,
                    i + 1,
                    self.config.cases,
                    e
                );
            }
        }
    }
}

/// Formats `name = value` pairs for failure messages.
pub fn format_inputs(pairs: &[(&str, &dyn std::fmt::Debug)]) -> String {
    let mut s = String::new();
    for (k, v) in pairs {
        let _ = write!(s, "{k} = {v:?}, ");
    }
    s.truncate(s.len().saturating_sub(2));
    s
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that checks the body against random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            runner.run(|rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                let __inputs = $crate::format_inputs(&[
                    $((stringify!($arg), &$arg as &dyn ::std::fmt::Debug)),+
                ]);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __outcome.map_err(|e| {
                    $crate::TestCaseError::fail(format!("{e}\n  inputs: {__inputs}"))
                })
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports the failing inputs instead of unwinding directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:literal $($args:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($fmt $($args)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let a = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&a));
            let b = Strategy::sample(&(0.5f64..4.0), &mut rng);
            assert!((0.5..4.0).contains(&b));
            let c = Strategy::sample(&(0u64..1000), &mut rng);
            assert!(c < 1000);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end, including multiple arguments
        /// and trailing commas.
        #[test]
        fn macro_smoke(
            n in 1usize..50,
            x in 0.0f64..1.0,
            s in 0u64..9,
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((0.0..1.0).contains(&x), "x out of range: {x}");
            prop_assert_eq!(s, s);
            prop_assert_ne!(n, 0);
        }
    }

    // A property defined without `#[test]` so it can be invoked manually to
    // observe the failure path.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        fn always_fails(n in 0usize..10) {
            prop_assert!(n > 100, "n was {n}");
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_reports_inputs() {
        always_fails();
    }
}
