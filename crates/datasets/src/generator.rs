//! Seeded Gaussian-mixture generation of binary classification datasets.

use crate::registry::DatasetSpec;
use hkrr_linalg::{Matrix, Pcg64};

/// A binary classification dataset with train and test splits.
///
/// Labels are ±1 as required by Algorithm 1 of the paper; the feature
/// matrices are *not* normalized — normalization (z-score, the paper's
/// default) is applied by the pipeline so the ablation on normalization can
/// be reproduced.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (matches the paper's table rows).
    pub name: String,
    /// Training features, `n x d`.
    pub train: Matrix,
    /// Training labels in `{-1, +1}`.
    pub train_labels: Vec<f64>,
    /// Test features, `m x d`.
    pub test: Matrix,
    /// True test labels in `{-1, +1}`.
    pub test_labels: Vec<f64>,
}

impl Dataset {
    /// Number of training points.
    pub fn num_train(&self) -> usize {
        self.train.nrows()
    }

    /// Number of test points.
    pub fn num_test(&self) -> usize {
        self.test.nrows()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.train.ncols()
    }
}

/// Generates a binary dataset from a specification.
///
/// Each class is a mixture of `spec.clusters_per_class` Gaussian blobs whose
/// centres are drawn once from `N(0, class_separation²)` per coordinate, so
/// the two classes overlap more (SUSY, HEPMASS) or less (LETTER, GAS)
/// depending on the separation-to-noise ratio, qualitatively matching the
/// accuracy ordering of the paper's Table 2.
pub fn generate(spec: &DatasetSpec, n_train: usize, n_test: usize, seed: u64) -> Dataset {
    let mut rng = Pcg64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let d = spec.dim;
    let k = spec.clusters_per_class;

    // Cluster centres for the two classes.
    let mut centres: Vec<(Vec<f64>, f64)> = Vec::with_capacity(2 * k);
    for &label in &[-1.0, 1.0] {
        // Each class has its own mean direction so the classes are separable
        // to a degree controlled by class_separation.
        let class_shift: Vec<f64> = (0..d)
            .map(|_| 0.5 * spec.class_separation * label * rng.next_gaussian().abs())
            .collect();
        for _ in 0..k {
            let centre: Vec<f64> = (0..d)
                .map(|j| class_shift[j] + spec.class_separation * rng.next_gaussian())
                .collect();
            centres.push((centre, label));
        }
    }

    let sample_split = |n: usize, rng: &mut Pcg64| -> (Matrix, Vec<f64>) {
        let mut data = Matrix::zeros(n, d);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let (centre, label) = &centres[rng.next_usize(centres.len())];
            for j in 0..d {
                data[(i, j)] = centre[j] + spec.noise * rng.next_gaussian();
            }
            labels.push(*label);
        }
        (data, labels)
    };

    let (train, train_labels) = sample_split(n_train, &mut rng);
    let (test, test_labels) = sample_split(n_test, &mut rng);

    Dataset {
        name: spec.name.to_string(),
        train,
        train_labels,
        test,
        test_labels,
    }
}

/// The GAS1K configuration used for the paper's Figure 1 and Table 1
/// singular-value studies: 1,000 GAS-like points of dimension 128.
pub fn gas1k(seed: u64) -> Dataset {
    generate(&crate::registry::GAS, 1000, 100, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{GAS, LETTER, SUSY};

    #[test]
    fn generated_shapes_match_request() {
        let ds = generate(&SUSY, 500, 100, 1);
        assert_eq!(ds.num_train(), 500);
        assert_eq!(ds.num_test(), 100);
        assert_eq!(ds.dim(), 8);
        assert_eq!(ds.train_labels.len(), 500);
        assert_eq!(ds.test_labels.len(), 100);
        assert_eq!(ds.name, "SUSY");
    }

    #[test]
    fn labels_are_plus_minus_one_and_both_present() {
        let ds = generate(&LETTER, 400, 50, 2);
        assert!(ds.train_labels.iter().all(|&l| l == 1.0 || l == -1.0));
        let pos = ds.train_labels.iter().filter(|&&l| l > 0.0).count();
        assert!(pos > 50 && pos < 350, "classes badly unbalanced: {pos}/400");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(&GAS, 100, 20, 7);
        let b = generate(&GAS, 100, 20, 7);
        assert!(a.train.approx_eq(&b.train, 0.0));
        assert_eq!(a.train_labels, b.train_labels);
        assert!(a.test.approx_eq(&b.test, 0.0));
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = generate(&GAS, 50, 10, 1);
        let b = generate(&GAS, 50, 10, 2);
        assert!(!a.train.approx_eq(&b.train, 1e-6));
    }

    #[test]
    fn separable_spec_is_roughly_linearly_separable_by_centroid() {
        // LETTER has a large separation/noise ratio; a nearest-class-mean
        // classifier should already do much better than chance, which is
        // the property the KRR accuracy experiments rely on.
        let ds = generate(&LETTER, 1000, 300, 3);
        let d = ds.dim();
        let mut mean_pos = vec![0.0; d];
        let mut mean_neg = vec![0.0; d];
        let (mut np, mut nn) = (0.0, 0.0);
        for i in 0..ds.num_train() {
            let target = if ds.train_labels[i] > 0.0 {
                np += 1.0;
                &mut mean_pos
            } else {
                nn += 1.0;
                &mut mean_neg
            };
            for (t, &x) in target.iter_mut().zip(ds.train.row(i).iter()) {
                *t += x;
            }
        }
        for v in mean_pos.iter_mut() {
            *v /= np;
        }
        for v in mean_neg.iter_mut() {
            *v /= nn;
        }
        let mut correct = 0;
        for i in 0..ds.num_test() {
            let x = ds.test.row(i);
            let dp: f64 = x
                .iter()
                .zip(&mean_pos)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let dn: f64 = x
                .iter()
                .zip(&mean_neg)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let pred = if dp < dn { 1.0 } else { -1.0 };
            if pred == ds.test_labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.num_test() as f64;
        assert!(acc > 0.75, "nearest-mean accuracy only {acc}");
    }

    #[test]
    fn gas1k_matches_figure1_setup() {
        let ds = gas1k(11);
        assert_eq!(ds.num_train(), 1000);
        assert_eq!(ds.dim(), 128);
    }
}
