//! # hkrr-datasets
//!
//! Synthetic stand-ins for the datasets used in the paper's evaluation.
//!
//! The paper evaluates on UCI datasets (SUSY, HEPMASS, COVTYPE, GAS, PEN,
//! LETTER) and the extended MNIST-8M digits.  Those raw datasets are not
//! available offline, so this crate generates seeded Gaussian-mixture
//! datasets matched in **dimension**, **size** and **class structure** to
//! each of them.  The phenomena the paper studies — the benefit of
//! clustering-based reordering, rank growth with dimension and bandwidth,
//! near-linear memory and factorization scaling — depend on that geometric
//! structure rather than on the exact UCI feature values, so the synthetic
//! stand-ins preserve the relevant behaviour (see DESIGN.md §3).

pub mod generator;
pub mod multiclass;
pub mod registry;

pub use generator::{generate, Dataset};
pub use multiclass::{generate_multiclass, MulticlassDataset};
pub use registry::{all_table2_specs, spec_by_name, DatasetSpec};
