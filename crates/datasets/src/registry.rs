//! Named dataset specifications mirroring the paper's evaluation datasets.

/// Specification of a synthetic dataset emulating one of the paper's
/// real-world datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Feature dimension `d` (matches the paper).
    pub dim: usize,
    /// Number of Gaussian clusters generated per class.
    pub clusters_per_class: usize,
    /// Distance scale between class centroids; smaller values make the
    /// classification problem harder (e.g. SUSY, HEPMASS).
    pub class_separation: f64,
    /// Standard deviation of the within-cluster noise.
    pub noise: f64,
    /// Gaussian bandwidth `h` used in Table 2 of the paper.
    pub default_h: f64,
    /// Ridge parameter `λ` used in Table 2 of the paper.
    pub default_lambda: f64,
    /// Classification accuracy reported in Table 2 (for EXPERIMENTS.md
    /// comparisons), as a fraction.
    pub paper_accuracy: f64,
}

/// SUSY: high-energy physics, d = 8, the hardest problem in Table 2.
pub const SUSY: DatasetSpec = DatasetSpec {
    name: "SUSY",
    dim: 8,
    clusters_per_class: 4,
    class_separation: 1.0,
    noise: 1.0,
    default_h: 1.0,
    default_lambda: 4.0,
    paper_accuracy: 0.801,
};

/// LETTER: handwritten letter recognition, d = 16.
pub const LETTER: DatasetSpec = DatasetSpec {
    name: "LETTER",
    dim: 16,
    clusters_per_class: 6,
    class_separation: 4.0,
    noise: 0.7,
    default_h: 0.5,
    default_lambda: 1.0,
    paper_accuracy: 1.0,
};

/// PEN: pen-based handwritten digit recognition, d = 16.
pub const PEN: DatasetSpec = DatasetSpec {
    name: "PEN",
    dim: 16,
    clusters_per_class: 5,
    class_separation: 3.5,
    noise: 0.8,
    default_h: 1.0,
    default_lambda: 1.0,
    paper_accuracy: 0.998,
};

/// HEPMASS: high-energy physics, d = 27.
pub const HEPMASS: DatasetSpec = DatasetSpec {
    name: "HEPMASS",
    dim: 27,
    clusters_per_class: 3,
    class_separation: 1.6,
    noise: 1.0,
    default_h: 1.5,
    default_lambda: 2.0,
    paper_accuracy: 0.911,
};

/// COVTYPE: forest cover type from cartographic variables, d = 54.
pub const COVTYPE: DatasetSpec = DatasetSpec {
    name: "COVTYPE",
    dim: 54,
    clusters_per_class: 5,
    class_separation: 2.5,
    noise: 0.9,
    default_h: 1.0,
    default_lambda: 1.0,
    paper_accuracy: 0.971,
};

/// GAS: chemical sensor measurements, d = 128.
pub const GAS: DatasetSpec = DatasetSpec {
    name: "GAS",
    dim: 128,
    clusters_per_class: 4,
    class_separation: 3.0,
    noise: 0.8,
    default_h: 1.5,
    default_lambda: 4.0,
    paper_accuracy: 0.995,
};

/// MNIST: handwritten digits (extended 8M variant in the paper), d = 784.
pub const MNIST: DatasetSpec = DatasetSpec {
    name: "MNIST",
    dim: 784,
    clusters_per_class: 8,
    class_separation: 2.8,
    noise: 0.9,
    default_h: 4.0,
    default_lambda: 3.0,
    paper_accuracy: 0.972,
};

/// The seven datasets of Table 2, in the paper's row order.
pub fn all_table2_specs() -> Vec<DatasetSpec> {
    vec![SUSY, LETTER, PEN, HEPMASS, COVTYPE, GAS, MNIST]
}

/// Looks a specification up by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    all_table2_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_seven_datasets_in_paper_order() {
        let specs = all_table2_specs();
        assert_eq!(specs.len(), 7);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["SUSY", "LETTER", "PEN", "HEPMASS", "COVTYPE", "GAS", "MNIST"]
        );
    }

    #[test]
    fn dimensions_match_the_paper() {
        assert_eq!(SUSY.dim, 8);
        assert_eq!(LETTER.dim, 16);
        assert_eq!(PEN.dim, 16);
        assert_eq!(HEPMASS.dim, 27);
        assert_eq!(COVTYPE.dim, 54);
        assert_eq!(GAS.dim, 128);
        assert_eq!(MNIST.dim, 784);
    }

    #[test]
    fn hyperparameters_match_table2() {
        assert_eq!(SUSY.default_h, 1.0);
        assert_eq!(SUSY.default_lambda, 4.0);
        assert_eq!(GAS.default_h, 1.5);
        assert_eq!(GAS.default_lambda, 4.0);
        assert_eq!(MNIST.default_h, 4.0);
        assert_eq!(MNIST.default_lambda, 3.0);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(spec_by_name("susy"), Some(SUSY));
        assert_eq!(spec_by_name("MNIST"), Some(MNIST));
        assert_eq!(spec_by_name("unknown"), None);
    }

    #[test]
    fn all_specs_are_well_formed() {
        for s in all_table2_specs() {
            assert!(s.dim > 0);
            assert!(s.clusters_per_class > 0);
            assert!(s.class_separation > 0.0);
            assert!(s.noise > 0.0);
            assert!(s.default_h > 0.0);
            assert!(s.default_lambda > 0.0);
            assert!((0.0..=1.0).contains(&s.paper_accuracy));
        }
    }
}
