//! Multi-class dataset generation for the one-vs-all experiments.
//!
//! Several of the paper's datasets (MNIST, PEN, LETTER, COVTYPE, GAS) have
//! more than two classes; the paper handles them with one-vs-all binary
//! classifiers (Section 2).  This module generates Gaussian-mixture
//! datasets with `c` classes and provides the one-vs-all label extraction.

use crate::registry::DatasetSpec;
use hkrr_linalg::{Matrix, Pcg64};

/// A multi-class dataset with integer class labels `0..num_classes`.
#[derive(Debug, Clone)]
pub struct MulticlassDataset {
    /// Dataset name.
    pub name: String,
    /// Training features, `n x d`.
    pub train: Matrix,
    /// Training class indices.
    pub train_labels: Vec<usize>,
    /// Test features, `m x d`.
    pub test: Matrix,
    /// True test class indices.
    pub test_labels: Vec<usize>,
    /// Number of classes `c`.
    pub num_classes: usize,
}

impl MulticlassDataset {
    /// Binary ±1 labels for the one-vs-all classifier of class `c`
    /// (`+1` for points of class `c`, `-1` otherwise).
    pub fn one_vs_all_labels(&self, class: usize) -> Vec<f64> {
        self.train_labels
            .iter()
            .map(|&l| if l == class { 1.0 } else { -1.0 })
            .collect()
    }

    /// Number of training points.
    pub fn num_train(&self) -> usize {
        self.train.nrows()
    }

    /// Number of test points.
    pub fn num_test(&self) -> usize {
        self.test.nrows()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.train.ncols()
    }
}

/// Generates a `num_classes`-way dataset following a spec's geometry.
pub fn generate_multiclass(
    spec: &DatasetSpec,
    num_classes: usize,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> MulticlassDataset {
    assert!(num_classes >= 2, "need at least two classes");
    let mut rng = Pcg64::seed_from_u64(seed ^ 0x51ed_2706_11c0_ffee);
    let d = spec.dim;

    // One mixture of blobs per class.
    let mut centres: Vec<(Vec<f64>, usize)> = Vec::new();
    for class in 0..num_classes {
        let class_shift: Vec<f64> = (0..d)
            .map(|_| spec.class_separation * rng.next_gaussian())
            .collect();
        for _ in 0..spec.clusters_per_class {
            let centre: Vec<f64> = (0..d)
                .map(|j| class_shift[j] + 0.5 * spec.class_separation * rng.next_gaussian())
                .collect();
            centres.push((centre, class));
        }
    }

    let sample = |n: usize, rng: &mut Pcg64| -> (Matrix, Vec<usize>) {
        let mut data = Matrix::zeros(n, d);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let (centre, class) = &centres[rng.next_usize(centres.len())];
            for j in 0..d {
                data[(i, j)] = centre[j] + spec.noise * rng.next_gaussian();
            }
            labels.push(*class);
        }
        (data, labels)
    };

    let (train, train_labels) = sample(n_train, &mut rng);
    let (test, test_labels) = sample(n_test, &mut rng);
    MulticlassDataset {
        name: spec.name.to_string(),
        train,
        train_labels,
        test,
        test_labels,
        num_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MNIST, PEN};

    #[test]
    fn shapes_and_label_ranges() {
        let ds = generate_multiclass(&PEN, 10, 300, 60, 1);
        assert_eq!(ds.num_train(), 300);
        assert_eq!(ds.num_test(), 60);
        assert_eq!(ds.dim(), 16);
        assert_eq!(ds.num_classes, 10);
        assert!(ds.train_labels.iter().all(|&l| l < 10));
        assert!(ds.test_labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn one_vs_all_labels_are_consistent() {
        let ds = generate_multiclass(&PEN, 4, 200, 20, 2);
        for class in 0..4 {
            let ova = ds.one_vs_all_labels(class);
            assert_eq!(ova.len(), 200);
            for (i, &l) in ova.iter().enumerate() {
                if ds.train_labels[i] == class {
                    assert_eq!(l, 1.0);
                } else {
                    assert_eq!(l, -1.0);
                }
            }
        }
    }

    #[test]
    fn every_class_is_represented() {
        let ds = generate_multiclass(&MNIST, 10, 1000, 100, 3);
        for class in 0..10 {
            assert!(
                ds.train_labels.contains(&class),
                "class {class} missing from the training split"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate_multiclass(&PEN, 3, 100, 10, 5);
        let b = generate_multiclass(&PEN, 3, 100, 10, 5);
        assert!(a.train.approx_eq(&b.train, 0.0));
        assert_eq!(a.train_labels, b.train_labels);
    }

    #[test]
    #[should_panic]
    fn rejects_single_class() {
        let _ = generate_multiclass(&PEN, 1, 10, 5, 1);
    }
}
