//! The sharded ensemble: parallel per-shard training and routed,
//! inverse-distance-weighted prediction.

use crate::report::EnsembleReport;
use crate::shard::{ShardPlan, ShardStrategy, MAX_SHARDS};
use hkrr_core::{DecisionModel, KrrConfig, KrrError, KrrModel};
use hkrr_linalg::Matrix;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Additive guard in the inverse-distance weights, so a query sitting
/// exactly on a centroid gets a finite (huge) weight instead of a division
/// by zero.
const WEIGHT_EPSILON: f64 = 1e-12;

/// Configuration of one ensemble fit.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleConfig {
    /// Number of shards `k` (1 ⇒ the ensemble degenerates to the
    /// monolithic model, bitwise).
    pub shards: usize,
    /// How many nearest shards answer each query (`m`); `m = shards` is the
    /// weighted full-average baseline.
    pub route_nearest: usize,
    /// Sharding strategy (cluster-tree truncation or random baseline).
    pub strategy: ShardStrategy,
    /// Per-shard training configuration; its clustering method and leaf
    /// size also drive the cluster sharding.
    pub base: KrrConfig,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            shards: 4,
            route_nearest: 2,
            strategy: ShardStrategy::Cluster,
            base: KrrConfig::default(),
        }
    }
}

impl EnsembleConfig {
    /// Validates the ensemble-level knobs plus the embedded base config.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.shards == 0 {
            return Err("shards must be at least 1".to_string());
        }
        if self.shards > MAX_SHARDS {
            return Err(format!(
                "shards {} exceeds the maximum {MAX_SHARDS}",
                self.shards
            ));
        }
        if self.route_nearest == 0 || self.route_nearest > self.shards {
            return Err(format!(
                "route_nearest must be in 1..={}, got {}",
                self.shards, self.route_nearest
            ));
        }
        Ok(())
    }

    /// Returns a copy with a different shard count (clamping
    /// `route_nearest` into range).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self.route_nearest = self.route_nearest.min(shards).max(1);
        self
    }
}

/// Routes raw queries to their `m` nearest shard centroids.
#[derive(Debug, Clone)]
pub struct Router {
    centroids: Matrix,
    route_nearest: usize,
}

impl Router {
    /// Builds a router over `k × d` centroids.
    pub fn new(centroids: Matrix, route_nearest: usize) -> Result<Router, String> {
        if centroids.nrows() == 0 {
            return Err("router needs at least one centroid".to_string());
        }
        if route_nearest == 0 || route_nearest > centroids.nrows() {
            return Err(format!(
                "route_nearest must be in 1..={}, got {route_nearest}",
                centroids.nrows()
            ));
        }
        Ok(Router {
            centroids,
            route_nearest,
        })
    }

    /// The shard centroids (`k × d`, raw feature space).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// How many shards answer each query.
    pub fn route_nearest(&self) -> usize {
        self.route_nearest
    }

    /// The `m` nearest shards for one raw query: `(shard, squared
    /// distance)` pairs ordered by ascending distance (ties by shard id).
    pub fn route(&self, query: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.centroids.nrows());
        self.route_into(query, &mut out);
        out
    }

    /// [`Router::route`] into a reused buffer.
    ///
    /// # Panics
    /// Panics when the query dimension does not match the centroids.
    pub fn route_into(&self, query: &[f64], out: &mut Vec<(usize, f64)>) {
        assert_eq!(
            query.len(),
            self.centroids.ncols(),
            "router: query dimension mismatch"
        );
        out.clear();
        let be = hkrr_linalg::dense_backend();
        for s in 0..self.centroids.nrows() {
            out.push((s, be.sq_distance(self.centroids.row(s), query)));
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.truncate(self.route_nearest);
    }
}

/// Combines `(squared distance, score)` contributions by inverse-distance
/// weighting. The contributions are first sorted by a total order on their
/// *values* (distance, then score), so the result is independent of the
/// order the shards were stored in — with `m = k`, routing is bitwise
/// permutation-invariant in the shard order. A single contribution is
/// returned verbatim, which is what makes a 1-shard ensemble reproduce the
/// monolithic model bitwise.
///
/// This is the *one* definition of the ensemble combining rule. The
/// distributed shard router (`hkrr_serve::router`) calls it on scores it
/// collected over TCP, which is what makes routed predictions bitwise
/// identical to the in-process [`EnsembleKrr`] on the same shard set.
///
/// # Panics
/// Panics (debug assertion) when `contributions` is empty — a query must
/// reach at least one shard.
pub fn combine_scores(contributions: &mut [(f64, f64)]) -> f64 {
    debug_assert!(!contributions.is_empty());
    if contributions.len() == 1 {
        return contributions[0].1;
    }
    contributions.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut numerator = 0.0;
    let mut denominator = 0.0;
    for &(d2, score) in contributions.iter() {
        let w = 1.0 / (d2.sqrt() + WEIGHT_EPSILON);
        numerator += w * score;
        denominator += w;
    }
    numerator / denominator
}

/// Everything an [`EnsembleKrr`] is made of, for persistence — the inverse
/// of its accessors, consumed by [`EnsembleKrr::from_parts`].
#[derive(Debug, Clone)]
pub struct EnsembleParts {
    /// Per-shard trained models, in shard order.
    pub models: Vec<KrrModel>,
    /// Shard centroids (`k × d`, raw feature space).
    pub centroids: Matrix,
    /// Sharding strategy the ensemble was trained with.
    pub strategy: ShardStrategy,
    /// How many nearest shards answer each query.
    pub route_nearest: usize,
    /// Wall-clock time of the whole parallel fit.
    pub fit_wall_seconds: f64,
    /// Per-shard wall-clock fit times.
    pub shard_wall_seconds: Vec<f64>,
}

/// A cluster-sharded ensemble of independently trained [`KrrModel`]s with
/// centroid-routed, inverse-distance-weighted prediction.
#[derive(Debug)]
pub struct EnsembleKrr {
    models: Vec<KrrModel>,
    router: Router,
    strategy: ShardStrategy,
    report: EnsembleReport,
    /// Cumulative routed-query count per shard (serving telemetry).
    shard_loads: Vec<AtomicU64>,
}

impl Clone for EnsembleKrr {
    fn clone(&self) -> Self {
        EnsembleKrr {
            models: self.models.clone(),
            router: self.router.clone(),
            strategy: self.strategy,
            report: self.report.clone(),
            // Telemetry counters restart on the clone.
            shard_loads: (0..self.models.len()).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl EnsembleKrr {
    /// Trains one model per shard, in parallel over the shards.
    ///
    /// `labels` are ±1, in the same order as `train`'s rows (exactly like
    /// [`KrrModel::fit`]); each shard trains on its own rows and labels
    /// with `config.base`.
    pub fn fit(
        train: &Matrix,
        labels: &[f64],
        config: &EnsembleConfig,
    ) -> Result<EnsembleKrr, KrrError> {
        config.validate().map_err(KrrError::InvalidInput)?;
        if labels.len() != train.nrows() {
            return Err(KrrError::InvalidInput(format!(
                "{} labels for {} training points",
                labels.len(),
                train.nrows()
            )));
        }
        let fit_start = Instant::now();
        let plan = ShardPlan::build(
            train,
            config.shards,
            config.strategy,
            config.base.clustering,
            config.base.leaf_size,
        )
        .map_err(KrrError::InvalidInput)?;

        // The shards are independent `(K_s + λI) w_s = y_s` problems: train
        // them concurrently. Each shard's arithmetic is identical to a
        // standalone fit on its rows, so the schedule stays bitwise
        // deterministic across thread counts.
        let indexed: Vec<(usize, &[usize])> = plan
            .shards()
            .iter()
            .map(|v| v.as_slice())
            .enumerate()
            .collect();
        let fitted: Result<Vec<(KrrModel, f64)>, KrrError> = indexed
            .par_iter()
            .with_min_len(1)
            .map(|&(shard, indices)| {
                let shard_points = train.select_rows(indices);
                let shard_labels: Vec<f64> = indices.iter().map(|&i| labels[i]).collect();
                let t = Instant::now();
                let mut span = hkrr_telemetry::span!("ensemble.fit_shard");
                span.annotate("shard", shard);
                span.annotate("rows", indices.len());
                let model = KrrModel::fit(&shard_points, &shard_labels, &config.base)?;
                let wall = t.elapsed();
                hkrr_telemetry::log::event(hkrr_telemetry::log::Level::Info, "ensemble.fit_shard")
                    .num("shard", shard)
                    .num("rows", indices.len())
                    .num("max_rank", model.report().max_rank)
                    .num("factor_bytes", model.report().factor_bytes)
                    .num("wall_us", wall.as_micros())
                    .emit();
                Ok((model, wall.as_secs_f64()))
            })
            .collect();
        let fitted = fitted?;
        let fit_wall_seconds = fit_start.elapsed().as_secs_f64();

        let (models, shard_wall_seconds): (Vec<KrrModel>, Vec<f64>) = fitted.into_iter().unzip();
        let report = EnsembleReport {
            strategy: config.strategy,
            shard_sizes: models.iter().map(KrrModel::num_train).collect(),
            shard_reports: models.iter().map(|m| m.report().clone()).collect(),
            shard_wall_seconds,
            fit_wall_seconds,
        };
        let router = Router::new(plan.centroids().clone(), config.route_nearest)
            .map_err(KrrError::InvalidInput)?;
        let shard_loads = (0..models.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(EnsembleKrr {
            models,
            router,
            strategy: config.strategy,
            report,
            shard_loads,
        })
    }

    /// Rebuilds an ensemble from persisted parts, validating their mutual
    /// consistency. Numerical content is taken as-is, so a save → load
    /// round trip reproduces predictions bitwise.
    pub fn from_parts(parts: EnsembleParts) -> Result<EnsembleKrr, KrrError> {
        let EnsembleParts {
            models,
            centroids,
            strategy,
            route_nearest,
            fit_wall_seconds,
            shard_wall_seconds,
        } = parts;
        if models.is_empty() {
            return Err(KrrError::InvalidInput(
                "ensemble needs at least one shard model".to_string(),
            ));
        }
        if models.len() > MAX_SHARDS {
            return Err(KrrError::InvalidInput(format!(
                "{} shards exceed the maximum {MAX_SHARDS}",
                models.len()
            )));
        }
        let dim = models[0].dim();
        if models.iter().any(|m| m.dim() != dim) {
            return Err(KrrError::InvalidInput(
                "shard models disagree on the feature dimension".to_string(),
            ));
        }
        if centroids.shape() != (models.len(), dim) {
            return Err(KrrError::InvalidInput(format!(
                "centroids are {}x{}, expected {}x{dim}",
                centroids.nrows(),
                centroids.ncols(),
                models.len()
            )));
        }
        if shard_wall_seconds.len() != models.len() {
            return Err(KrrError::InvalidInput(format!(
                "{} shard wall times for {} shards",
                shard_wall_seconds.len(),
                models.len()
            )));
        }
        let router = Router::new(centroids, route_nearest).map_err(KrrError::InvalidInput)?;
        let report = EnsembleReport {
            strategy,
            shard_sizes: models.iter().map(KrrModel::num_train).collect(),
            shard_reports: models.iter().map(|m| m.report().clone()).collect(),
            shard_wall_seconds,
            fit_wall_seconds,
        };
        let shard_loads = (0..models.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(EnsembleKrr {
            models,
            router,
            strategy,
            report,
            shard_loads,
        })
    }

    /// Decomposes the ensemble into its persistable parts (the inverse of
    /// [`EnsembleKrr::from_parts`]).
    pub fn into_parts(self) -> EnsembleParts {
        EnsembleParts {
            models: self.models,
            centroids: self.router.centroids,
            strategy: self.strategy,
            route_nearest: self.router.route_nearest,
            fit_wall_seconds: self.report.fit_wall_seconds,
            shard_wall_seconds: self.report.shard_wall_seconds,
        }
    }

    /// The per-shard models, in shard order.
    pub fn models(&self) -> &[KrrModel] {
        &self.models
    }

    /// The prediction router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The sharding strategy the ensemble was trained with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The ensemble-level training report.
    pub fn report(&self) -> &EnsembleReport {
        &self.report
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.models.len()
    }

    /// Raw input feature dimension.
    pub fn dim(&self) -> usize {
        self.models[0].dim()
    }

    /// Total training points across all shards.
    pub fn num_train(&self) -> usize {
        self.models.iter().map(KrrModel::num_train).sum()
    }

    /// Cumulative routed-query count per shard since construction (or the
    /// last clone). One query routed to `m` shards counts once per shard.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shard_loads
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Raw decision values for each test point (allocating form; delegates
    /// to the [`DecisionModel`] default so the logic lives in one place).
    pub fn decision_values(&self, test: &Matrix) -> Vec<f64> {
        DecisionModel::decision_values(self, test)
    }

    /// Decision values into a caller buffer: route every query to its `m`
    /// nearest shard centroids, evaluate each shard once over the queries
    /// routed to it (batched, buffer-reusing), and combine by
    /// inverse-distance weighting.
    ///
    /// # Panics
    /// Panics when `out.len() != test.nrows()` or the dimensions mismatch.
    pub fn decision_values_into(&self, test: &Matrix, out: &mut [f64]) {
        assert_eq!(out.len(), test.nrows(), "ensemble: output length mismatch");
        assert_eq!(test.ncols(), self.dim(), "ensemble: query dimension");
        let m = self.router.route_nearest;
        let k = self.models.len();

        // Phase 1: routing. Remember each query's (shard, distance) picks
        // and build the per-shard query lists.
        let mut routes: Vec<(usize, f64)> = Vec::with_capacity(test.nrows() * m);
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut scratch = Vec::with_capacity(k);
        for i in 0..test.nrows() {
            self.router.route_into(test.row(i), &mut scratch);
            for &(s, d2) in scratch.iter() {
                per_shard[s].push(i);
                routes.push((s, d2));
            }
        }

        // Phase 2: one batched evaluation per shard over exactly the
        // queries routed to it.
        let mut shard_scores: Vec<Vec<f64>> = vec![Vec::new(); k];
        for (s, queries) in per_shard.iter().enumerate() {
            if queries.is_empty() {
                continue;
            }
            self.shard_loads[s].fetch_add(queries.len() as u64, Ordering::Relaxed);
            let sub = test.select_rows(queries);
            let scores = &mut shard_scores[s];
            scores.resize(queries.len(), 0.0);
            self.models[s].decision_values_into(&sub, scores);
        }

        // Phase 3: combine. Walk the routes in query order, pulling each
        // shard's scores in the order its queries were appended.
        let mut cursors = vec![0usize; k];
        let mut contributions: Vec<(f64, f64)> = Vec::with_capacity(m);
        for (i, slot) in out.iter_mut().enumerate() {
            contributions.clear();
            for &(s, d2) in &routes[i * m..(i + 1) * m] {
                let score = shard_scores[s][cursors[s]];
                cursors[s] += 1;
                contributions.push((d2, score));
            }
            *slot = combine_scores(&mut contributions);
        }
    }

    /// Predicted ±1 labels (allocating form; delegates to the
    /// [`DecisionModel`] default — the thresholding rule has exactly one
    /// definition, in `hkrr_core::handle`).
    pub fn predict(&self, test: &Matrix) -> Vec<f64> {
        DecisionModel::predict(self, test)
    }

    /// Predicted ±1 labels into a caller buffer (delegates to the
    /// [`DecisionModel`] default).
    pub fn predict_into(&self, test: &Matrix, out: &mut [f64]) {
        DecisionModel::predict_into(self, test, out);
    }
}

impl DecisionModel for EnsembleKrr {
    fn dim(&self) -> usize {
        EnsembleKrr::dim(self)
    }

    fn num_train(&self) -> usize {
        EnsembleKrr::num_train(self)
    }

    fn decision_values_into(&self, test: &Matrix, out: &mut [f64]) {
        EnsembleKrr::decision_values_into(self, test, out);
    }

    fn num_models(&self) -> usize {
        self.num_shards()
    }

    fn model_loads(&self) -> Vec<u64> {
        self.shard_loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_core::SolverKind;
    use hkrr_datasets::generate;
    use hkrr_datasets::registry::LETTER;

    fn ensemble_config(shards: usize, route_nearest: usize) -> EnsembleConfig {
        EnsembleConfig {
            shards,
            route_nearest,
            strategy: ShardStrategy::Cluster,
            base: KrrConfig {
                h: LETTER.default_h,
                lambda: LETTER.default_lambda,
                solver: SolverKind::Hss,
                ..KrrConfig::default()
            },
        }
    }

    #[test]
    fn four_shard_ensemble_classifies_and_reports() {
        let ds = generate(&LETTER, 400, 100, 1);
        let cfg = ensemble_config(4, 2);
        let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        assert_eq!(ens.num_shards(), 4);
        assert_eq!(ens.num_train(), 400);
        assert_eq!(ens.dim(), 16);
        let acc = hkrr_core::accuracy(&ens.predict(&ds.test), &ds.test_labels);
        assert!(acc > 0.85, "ensemble accuracy {acc}");
        let r = ens.report();
        assert_eq!(r.num_shards(), 4);
        assert_eq!(r.num_train(), 400);
        assert!(r.fit_wall_seconds > 0.0);
        assert!(r.sum_factorization_seconds() > 0.0);
        assert_eq!(r.shard_wall_seconds.len(), 4);
        // Every query routed to exactly 2 shards.
        assert_eq!(ens.shard_loads().iter().sum::<u64>(), 2 * 100);
    }

    #[test]
    fn single_shard_ensemble_is_the_monolithic_model_bitwise() {
        let ds = generate(&LETTER, 220, 50, 2);
        let cfg = ensemble_config(1, 1);
        let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        let mono = KrrModel::fit(&ds.train, &ds.train_labels, &cfg.base).unwrap();
        assert_eq!(
            ens.decision_values(&ds.test),
            mono.decision_values(&ds.test)
        );
        assert_eq!(ens.models()[0].weights(), mono.weights());
    }

    #[test]
    fn buffered_paths_match_allocating_ones() {
        let ds = generate(&LETTER, 240, 60, 3);
        let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &ensemble_config(3, 2)).unwrap();
        let dv = ens.decision_values(&ds.test);
        let pred = ens.predict(&ds.test);
        let mut buf = vec![f64::NAN; 60];
        ens.decision_values_into(&ds.test, &mut buf);
        assert_eq!(buf, dv);
        ens.predict_into(&ds.test, &mut buf);
        assert_eq!(buf, pred);
        for p in pred {
            assert!(p == 1.0 || p == -1.0);
        }
    }

    #[test]
    fn route_all_matches_weighted_average_of_every_shard() {
        let ds = generate(&LETTER, 240, 20, 4);
        let k = 3;
        let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &ensemble_config(k, k)).unwrap();
        // Reference: per-shard scores combined by hand.
        for i in 0..ds.test.nrows() {
            let query = ds.test.submatrix(i, i + 1, 0, ds.test.ncols());
            let mut contributions: Vec<(f64, f64)> = ens
                .router()
                .route(query.row(0))
                .into_iter()
                .map(|(s, d2)| (d2, ens.models()[s].decision_values(&query)[0]))
                .collect();
            let expected = combine_scores(&mut contributions);
            assert_eq!(ens.decision_values(&query)[0], expected, "query {i}");
        }
    }

    #[test]
    fn parts_roundtrip_is_bitwise_and_validated() {
        let ds = generate(&LETTER, 200, 40, 5);
        let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &ensemble_config(2, 2)).unwrap();
        let reference = ens.decision_values(&ds.test);
        let rebuilt = EnsembleKrr::from_parts(ens.clone().into_parts()).unwrap();
        assert_eq!(rebuilt.decision_values(&ds.test), reference);
        assert_eq!(rebuilt.num_shards(), 2);

        // Inconsistent parts are rejected.
        let mut parts = ens.clone().into_parts();
        parts.models.pop();
        assert!(EnsembleKrr::from_parts(parts).is_err());
        let mut parts = ens.clone().into_parts();
        parts.route_nearest = 9;
        assert!(EnsembleKrr::from_parts(parts).is_err());
        let mut parts = ens.clone().into_parts();
        parts.shard_wall_seconds.pop();
        assert!(EnsembleKrr::from_parts(parts).is_err());
        let mut parts = ens.into_parts();
        parts.models.clear();
        parts.shard_wall_seconds.clear();
        assert!(EnsembleKrr::from_parts(parts).is_err());
    }

    #[test]
    fn invalid_configs_and_inputs_are_rejected() {
        let ds = generate(&LETTER, 100, 10, 6);
        let mut cfg = ensemble_config(0, 1);
        assert!(EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).is_err());
        cfg = ensemble_config(2, 3);
        assert!(EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).is_err());
        cfg = ensemble_config(2, 2);
        assert!(EnsembleKrr::fit(&ds.train, &ds.train_labels[..50], &cfg).is_err());
        assert!(ensemble_config(MAX_SHARDS + 1, 1).validate().is_err());
        // with_shards clamps route_nearest into range.
        let clamped = ensemble_config(4, 4).with_shards(2);
        assert_eq!(clamped.route_nearest, 2);
        clamped.validate().unwrap();
    }

    #[test]
    fn router_orders_by_distance_and_respects_m() {
        let centroids = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]);
        let router = Router::new(centroids, 2).unwrap();
        let picks = router.route(&[1.0, 0.0]);
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0].0, 0);
        assert_eq!(picks[1].0, 1);
        assert!(picks[0].1 < picks[1].1);
        assert!(Router::new(Matrix::zeros(0, 2), 1).is_err());
        assert!(Router::new(Matrix::zeros(3, 2), 4).is_err());
    }
}
