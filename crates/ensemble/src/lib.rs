//! # hkrr-ensemble
//!
//! Cluster-sharded ensemble training and multi-model prediction routing —
//! the divide-and-conquer layer above the paper's single-model solvers.
//!
//! The paper (and `hkrr_core`) makes one kernel ridge regression solve
//! scalable by compressing *one* `(K + λI)` system. This crate scales the
//! axis the compression cannot: it partitions the training set into `k`
//! geometrically coherent shards using the same cluster-tree machinery the
//! paper studies for reordering (a [`ClusterTree`](hkrr_clustering::ClusterTree)
//! truncated at `k` frontier nodes), trains one independent
//! [`KrrModel`](hkrr_core::KrrModel) per shard **in parallel** — each a
//! full paper-style HSS + ULV (or dense / PCG) solve — and answers queries
//! by routing each test point to its `m` nearest shard centroids, combining
//! the local experts' decision values by inverse-distance weighting.
//!
//! Why this wins: HSS compression samples against an `O(n²)` implicit
//! operator, so `k` shards of `n/k` points cost roughly `1/k` of the
//! monolithic compression *summed* — while geometrically coherent shards
//! keep each local kernel sub-problem as compressible as the paper's
//! reordered blocks. The integration suite pins the headline: on the
//! medium workload a 4-shard cluster-routed ensemble trains faster than
//! the monolithic HSS solve and matches its RMSE within 5%, and cluster
//! sharding beats random sharding at equal `k`.
//!
//! * [`shard`] — [`ShardPlan`]: cut a training set into `k` shards by
//!   truncating a cluster tree (or randomly, for comparison), with per-shard
//!   centroids,
//! * [`model`] — [`EnsembleKrr`]: parallel per-shard training, the
//!   centroid [`Router`], and buffer-reusing prediction that drops into the
//!   serving engine unchanged (it implements
//!   [`DecisionModel`](hkrr_core::DecisionModel)),
//! * [`report`] — [`EnsembleReport`]: per-shard
//!   [`TrainingReport`](hkrr_core::TrainingReport)s plus the ensemble-level
//!   wall-clock split,
//! * [`objective`] — [`EnsembleValidationObjective`]: plugs the shard count
//!   into the tuner's searchable dimensions
//!   ([`hkrr_tuner::ensemble_search`]).

#![warn(missing_docs)]

pub mod model;
pub mod objective;
pub mod report;
pub mod shard;

pub use model::{combine_scores, EnsembleConfig, EnsembleKrr, EnsembleParts, Router};
pub use objective::EnsembleValidationObjective;
pub use report::EnsembleReport;
pub use shard::{ShardPlan, ShardStrategy, MAX_SHARDS};
