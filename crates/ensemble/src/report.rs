//! Ensemble-level training report: the per-shard
//! [`TrainingReport`]s plus the wall-clock aggregates the benchmark
//! harness and the integration suite pin (shard-sum vs monolithic
//! factorization, parallel fit wall time).

use crate::shard::ShardStrategy;
use hkrr_core::TrainingReport;

/// Timing and size information for one ensemble fit.
#[derive(Debug, Clone)]
pub struct EnsembleReport {
    /// How the training set was sharded.
    pub strategy: ShardStrategy,
    /// Per-shard training-set sizes.
    pub shard_sizes: Vec<usize>,
    /// Per-shard training reports (one full paper-style report per local
    /// expert).
    pub shard_reports: Vec<TrainingReport>,
    /// Per-shard wall-clock fit time, as observed around each shard's
    /// `KrrModel::fit` call.
    pub shard_wall_seconds: Vec<f64>,
    /// Wall-clock time of the whole parallel fit (sharding included). On a
    /// multi-core host this approaches `max(shard_wall_seconds)`, on one
    /// core the shard sum.
    pub fit_wall_seconds: f64,
}

impl EnsembleReport {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shard_reports.len()
    }

    /// Total training points across the shards.
    pub fn num_train(&self) -> usize {
        self.shard_sizes.iter().sum()
    }

    /// Sum of the shards' factorization times — the quantity the tentpole
    /// claim compares against the monolithic factorization.
    pub fn sum_factorization_seconds(&self) -> f64 {
        self.shard_reports
            .iter()
            .map(|r| r.factorization_seconds)
            .sum()
    }

    /// Sum of the shards' full per-phase training times (clustering,
    /// construction, factorization, solve) — the sequential-work total.
    pub fn sum_total_seconds(&self) -> f64 {
        self.shard_reports
            .iter()
            .map(TrainingReport::total_seconds)
            .sum()
    }

    /// The slowest shard's wall-clock fit time (the parallel critical path).
    pub fn max_shard_wall_seconds(&self) -> f64 {
        self.shard_wall_seconds.iter().copied().fold(0.0, f64::max)
    }

    /// Total compressed-matrix memory across the shards, in bytes.
    pub fn total_matrix_memory_bytes(&self) -> usize {
        self.shard_reports
            .iter()
            .map(|r| r.matrix_memory_bytes)
            .sum()
    }

    /// Largest HSS rank observed across the shards.
    pub fn max_rank(&self) -> usize {
        self.shard_reports
            .iter()
            .map(|r| r.max_rank)
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Display for EnsembleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ensemble k={} strategy={} n={} mem={:.2}MB max-rank={}",
            self.num_shards(),
            self.strategy.label(),
            self.num_train(),
            self.total_matrix_memory_bytes() as f64 / (1024.0 * 1024.0),
            self.max_rank()
        )?;
        write!(
            f,
            "  fit wall {:.3}s | shard-sum total {:.3}s | shard-sum factor {:.3}s | slowest shard {:.3}s | sizes {:?}",
            self.fit_wall_seconds,
            self.sum_total_seconds(),
            self.sum_factorization_seconds(),
            self.max_shard_wall_seconds(),
            self.shard_sizes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_core::SolverKind;

    fn report_with(factor: f64, total_extra: f64, n: usize, rank: usize) -> TrainingReport {
        let mut r = TrainingReport::new(SolverKind::Hss, n, 4);
        r.factorization_seconds = factor;
        r.hss_other_seconds = total_extra;
        r.matrix_memory_bytes = n * 100;
        r.max_rank = rank;
        r
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let r = EnsembleReport {
            strategy: ShardStrategy::Cluster,
            shard_sizes: vec![60, 40],
            shard_reports: vec![report_with(0.5, 0.1, 60, 9), report_with(0.25, 0.2, 40, 12)],
            shard_wall_seconds: vec![0.7, 0.5],
            fit_wall_seconds: 0.8,
        };
        assert_eq!(r.num_shards(), 2);
        assert_eq!(r.num_train(), 100);
        assert!((r.sum_factorization_seconds() - 0.75).abs() < 1e-12);
        assert!((r.sum_total_seconds() - 1.05).abs() < 1e-12);
        assert!((r.max_shard_wall_seconds() - 0.7).abs() < 1e-12);
        assert_eq!(r.total_matrix_memory_bytes(), 10_000);
        assert_eq!(r.max_rank(), 12);
        let text = r.to_string();
        assert!(
            text.contains("ensemble k=2 strategy=cluster n=100"),
            "{text}"
        );
        assert!(text.contains("sizes [60, 40]"), "{text}");
    }
}
