//! The tuning objective that makes the shard count a searchable dimension:
//! validation accuracy of a sharded ensemble, pluggable into
//! [`hkrr_tuner::ensemble_search`].

use crate::model::{EnsembleConfig, EnsembleKrr};
use hkrr_core::accuracy;
use hkrr_linalg::Matrix;
use hkrr_tuner::Objective;

/// Validation-set accuracy of a sharded ensemble trained with the given
/// hyperparameters — the ensemble counterpart of
/// [`hkrr_tuner::ValidationObjective`]. `evaluate` trains at the base
/// configuration's shard count; `evaluate_shards` overrides it, which is
/// what [`hkrr_tuner::ensemble_search`] drives.
pub struct EnsembleValidationObjective<'a> {
    train: &'a Matrix,
    train_labels: &'a [f64],
    validation: &'a Matrix,
    validation_labels: &'a [f64],
    base_config: EnsembleConfig,
}

impl<'a> EnsembleValidationObjective<'a> {
    /// Creates the objective from a train/validation split and a base
    /// ensemble configuration whose `h`, `λ` and shard count are
    /// overridden per evaluation.
    pub fn new(
        train: &'a Matrix,
        train_labels: &'a [f64],
        validation: &'a Matrix,
        validation_labels: &'a [f64],
        base_config: EnsembleConfig,
    ) -> Self {
        assert_eq!(train.nrows(), train_labels.len(), "train labels mismatch");
        assert_eq!(
            validation.nrows(),
            validation_labels.len(),
            "validation labels mismatch"
        );
        EnsembleValidationObjective {
            train,
            train_labels,
            validation,
            validation_labels,
            base_config,
        }
    }
}

impl Objective for EnsembleValidationObjective<'_> {
    fn evaluate(&self, h: f64, lambda: f64) -> f64 {
        self.evaluate_shards(self.base_config.shards, h, lambda)
    }

    fn evaluate_shards(&self, shards: usize, h: f64, lambda: f64) -> f64 {
        let mut config = self.base_config.with_shards(shards);
        config.base = config.base.with_h(h).with_lambda(lambda);
        match EnsembleKrr::fit(self.train, self.train_labels, &config) {
            Ok(ens) => accuracy(&ens.predict(self.validation), self.validation_labels),
            // Failed fits (invalid shard counts for the data size,
            // numerically singular shards) score zero so the search moves
            // away from them.
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardStrategy;
    use hkrr_core::{KrrConfig, SolverKind};
    use hkrr_datasets::generate;
    use hkrr_datasets::registry::LETTER;
    use hkrr_tuner::{ensemble_search, SearchOptions};

    fn base() -> EnsembleConfig {
        EnsembleConfig {
            shards: 2,
            route_nearest: 2,
            strategy: ShardStrategy::Cluster,
            base: KrrConfig {
                h: LETTER.default_h,
                lambda: LETTER.default_lambda,
                solver: SolverKind::Hss,
                ..KrrConfig::default()
            },
        }
    }

    #[test]
    fn shard_count_is_searchable_through_the_tuner() {
        let ds = generate(&LETTER, 320, 80, 11);
        let obj = EnsembleValidationObjective::new(
            &ds.train,
            &ds.train_labels,
            &ds.test,
            &ds.test_labels,
            base(),
        );
        let r = ensemble_search(
            &obj,
            &[1, 2, 4],
            &SearchOptions {
                budget: 6,
                ..SearchOptions::default()
            },
        );
        assert_eq!(r.per_shards.len(), 3);
        assert!(
            [1usize, 2, 4].contains(&r.best_shards),
            "winner {} not among the candidates",
            r.best_shards
        );
        assert!(r.best.accuracy > 0.5, "best accuracy {}", r.best.accuracy);
        // The budget was fully spent across the shard counts.
        let spent: usize = r.per_shards.iter().map(|(_, t)| t.num_evaluations()).sum();
        assert_eq!(spent, 6);
    }

    #[test]
    fn good_parameters_beat_degenerate_ones() {
        let ds = generate(&LETTER, 240, 60, 12);
        let obj = EnsembleValidationObjective::new(
            &ds.train,
            &ds.train_labels,
            &ds.test,
            &ds.test_labels,
            base(),
        );
        let good = obj.evaluate(LETTER.default_h, LETTER.default_lambda);
        let bad = obj.evaluate(1e-4, 100.0);
        assert!(good > bad, "good {good} should beat bad {bad}");
        // Invalid shard counts score zero instead of erroring out.
        assert_eq!(obj.evaluate_shards(0, 1.0, 1.0), 0.0);
    }
}
