//! Sharding: partition a training set into `k` shards.
//!
//! The cluster strategy reuses the paper's Section 2 machinery: run the
//! configured clustering method once, then truncate the resulting
//! [`ClusterTree`] at a frontier of `k` nodes (always splitting the largest
//! remaining node), so each shard is a contiguous block of the clustered
//! ordering — geometrically coherent exactly like the diagonal blocks the
//! HSS format exploits. The random strategy is the classic
//! divide-and-conquer baseline: a seeded shuffle chopped into `k`
//! near-equal parts, kept for comparison.

use hkrr_clustering::{cluster, ClusterTree, ClusteringMethod};
use hkrr_linalg::{Matrix, Pcg64};

/// Upper bound on the shard count: keeps the serialized form (one codec
/// section per shard) and the routing table small, and catches nonsense
/// configurations before any training starts.
pub const MAX_SHARDS: usize = 32;

/// How the training set is cut into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Truncate a cluster tree (built with the training configuration's
    /// clustering method) at `k` frontier nodes: shards are geometrically
    /// coherent point groups.
    Cluster,
    /// Seeded random partition into `k` near-equal shards — the
    /// divide-and-conquer baseline the cluster strategy is compared against.
    Random {
        /// Seed of the partitioning shuffle.
        seed: u64,
    },
}

impl ShardStrategy {
    /// Short label used in reports, file metadata and benchmark rows.
    pub fn label(&self) -> &'static str {
        match self {
            ShardStrategy::Cluster => "cluster",
            ShardStrategy::Random { .. } => "random",
        }
    }
}

/// A partition of `n` training points into `k` shards, with one centroid
/// per shard (in the raw feature space) for prediction routing.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Vec<usize>>,
    centroids: Matrix,
    strategy: ShardStrategy,
}

impl ShardPlan {
    /// Cuts `points` (rows) into `k` shards with the given strategy.
    ///
    /// For [`ShardStrategy::Cluster`], `method` and `leaf_size` configure
    /// the cluster tree that is truncated (use the same values as the
    /// per-shard training configuration so the shards follow the same
    /// geometry the solver later exploits). Each shard's indices are
    /// returned sorted ascending, so a single-shard plan presents the
    /// training set in its original order — which is what makes a `k = 1`
    /// ensemble reproduce the monolithic model bitwise.
    pub fn build(
        points: &Matrix,
        k: usize,
        strategy: ShardStrategy,
        method: ClusteringMethod,
        leaf_size: usize,
    ) -> Result<ShardPlan, String> {
        let n = points.nrows();
        if k == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if k > MAX_SHARDS {
            return Err(format!("shard count {k} exceeds the maximum {MAX_SHARDS}"));
        }
        if n < k {
            return Err(format!("cannot cut {n} points into {k} shards"));
        }
        let mut shards = match strategy {
            ShardStrategy::Cluster => {
                let ordering = cluster(points, method, leaf_size);
                let frontier = truncate_tree(ordering.tree(), k)?;
                frontier
                    .into_iter()
                    .map(|node| {
                        ordering
                            .tree()
                            .node(node)
                            .range()
                            .map(|pos| ordering.permutation()[pos])
                            .collect()
                    })
                    .collect::<Vec<Vec<usize>>>()
            }
            ShardStrategy::Random { seed } => {
                let mut rng = Pcg64::seed_from_u64(seed);
                let mut indices: Vec<usize> = (0..n).collect();
                rng.shuffle(&mut indices);
                let base = n / k;
                let extra = n % k;
                let mut out = Vec::with_capacity(k);
                let mut start = 0;
                for i in 0..k {
                    let size = base + usize::from(i < extra);
                    out.push(indices[start..start + size].to_vec());
                    start += size;
                }
                out
            }
        };
        for shard in &mut shards {
            shard.sort_unstable();
        }
        let centroids = compute_centroids(points, &shards);
        Ok(ShardPlan {
            shards,
            centroids,
            strategy,
        })
    }

    /// The shards: original point indices, each sorted ascending.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// Per-shard centroids (`k × d`, raw feature space).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// The strategy that produced this plan.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Truncates `tree` at a frontier of exactly `k` nodes: starting from the
/// root, repeatedly replaces the largest splittable frontier node with its
/// children. The frontier is returned ordered by index range.
fn truncate_tree(tree: &ClusterTree, k: usize) -> Result<Vec<usize>, String> {
    let mut frontier = vec![tree.root()];
    while frontier.len() < k {
        let split = frontier
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, id)| !tree.is_leaf(id))
            .max_by_key(|&(_, id)| tree.node(id).size);
        let Some((pos, id)) = split else {
            return Err(format!(
                "cluster tree has only {} leaves, cannot form {k} shards \
                 (lower the leaf size or the shard count)",
                frontier.len()
            ));
        };
        let node = tree.node(id);
        frontier[pos] = node.left.expect("splittable node has children");
        frontier.push(node.right.expect("splittable node has children"));
    }
    frontier.sort_by_key(|&id| tree.node(id).start);
    Ok(frontier)
}

/// Mean of each shard's points, rows of a `k × d` matrix.
fn compute_centroids(points: &Matrix, shards: &[Vec<usize>]) -> Matrix {
    let d = points.ncols();
    let mut centroids = Matrix::zeros(shards.len(), d);
    for (s, shard) in shards.iter().enumerate() {
        let row = centroids.row_mut(s);
        for &i in shard {
            for (j, v) in row.iter_mut().enumerate() {
                *v += points[(i, j)];
            }
        }
        let inv = 1.0 / shard.len().max(1) as f64;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_points(seed: u64, n: usize, d: usize) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        Matrix::from_fn(n, d, |i, _| {
            let center = match i % 4 {
                0 => -9.0,
                1 => -3.0,
                2 => 3.0,
                _ => 9.0,
            };
            center + rng.next_gaussian()
        })
    }

    fn assert_partition(plan: &ShardPlan, n: usize, k: usize) {
        assert_eq!(plan.num_shards(), k);
        let mut seen = vec![false; n];
        for shard in plan.shards() {
            assert!(!shard.is_empty(), "empty shard");
            assert!(shard.windows(2).all(|w| w[0] < w[1]), "shard not sorted");
            for &i in shard {
                assert!(!seen[i], "index {i} appears in two shards");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition misses indices");
        assert_eq!(plan.centroids().shape(), (k, plan.centroids().ncols()));
    }

    #[test]
    fn cluster_plan_partitions_and_separates_blobs() {
        let points = blob_points(1, 240, 2);
        let plan = ShardPlan::build(
            &points,
            4,
            ShardStrategy::Cluster,
            ClusteringMethod::TwoMeans { seed: 3 },
            16,
        )
        .unwrap();
        assert_partition(&plan, 240, 4);
        // Geometric coherence: within-shard spread is far below the global
        // spread for well-separated blobs.
        for (s, shard) in plan.shards().iter().enumerate() {
            let c = plan.centroids().row(s);
            for &i in shard {
                let d2: f64 = points
                    .row(i)
                    .iter()
                    .zip(c.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                // Within-blob distances stay ≲ 20 (unit noise in 2-D);
                // a point assigned to a neighbouring blob would sit ≳ 70.
                assert!(d2 < 30.0, "shard {s} point {i} is {d2} from its centroid");
            }
        }
    }

    #[test]
    fn random_plan_partitions_evenly_and_deterministically() {
        let points = blob_points(2, 103, 3);
        let plan = ShardPlan::build(
            &points,
            4,
            ShardStrategy::Random { seed: 7 },
            ClusteringMethod::Natural,
            16,
        )
        .unwrap();
        assert_partition(&plan, 103, 4);
        let sizes: Vec<usize> = plan.shards().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
        let again = ShardPlan::build(
            &points,
            4,
            ShardStrategy::Random { seed: 7 },
            ClusteringMethod::Natural,
            16,
        )
        .unwrap();
        assert_eq!(plan.shards(), again.shards());
    }

    #[test]
    fn single_shard_plan_is_the_identity_partition() {
        let points = blob_points(3, 50, 2);
        for strategy in [ShardStrategy::Cluster, ShardStrategy::Random { seed: 1 }] {
            let plan = ShardPlan::build(
                &points,
                1,
                strategy,
                ClusteringMethod::TwoMeans { seed: 3 },
                16,
            )
            .unwrap();
            assert_eq!(plan.shards(), &[(0..50).collect::<Vec<usize>>()]);
        }
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let points = blob_points(4, 20, 2);
        let m = ClusteringMethod::Natural;
        assert!(ShardPlan::build(&points, 0, ShardStrategy::Cluster, m, 16).is_err());
        assert!(ShardPlan::build(&points, 21, ShardStrategy::Cluster, m, 16).is_err());
        assert!(ShardPlan::build(&points, MAX_SHARDS + 1, ShardStrategy::Cluster, m, 16).is_err());
        // More shards than the tree has leaves (leaf_size 16 over 20 points
        // gives a 2-leaf tree).
        assert!(ShardPlan::build(&points, 8, ShardStrategy::Cluster, m, 16).is_err());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(ShardStrategy::Cluster.label(), "cluster");
        assert_eq!(ShardStrategy::Random { seed: 0 }.label(), "random");
    }
}
