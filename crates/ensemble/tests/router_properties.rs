//! Property tests of the ensemble router and its degenerate cases:
//!
//! * with `m = k` (every shard answers every query) prediction is
//!   **bitwise permutation-invariant** in the shard storage order — the
//!   combination sorts contributions by value, not by shard index,
//! * a single-shard ensemble reproduces the monolithic [`KrrModel`]
//!   **bitwise** — same weights, same decision values,
//! * the one-vs-all reduction accepts ensembles as per-class classifiers
//!   (the `DecisionModel` seam).

use hkrr_core::{KrrConfig, KrrModel, MulticlassKrr, SolverKind};
use hkrr_datasets::registry::{LETTER, SUSY};
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use proptest::prelude::*;

fn ensemble_config(shards: usize, route_nearest: usize, strategy: ShardStrategy) -> EnsembleConfig {
    EnsembleConfig {
        shards,
        route_nearest,
        strategy,
        base: KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        },
    }
}

/// Applies a permutation to the stored shard order: position `i` of the
/// permuted ensemble holds the original shard `perm[i]`.
fn permute_shards(ens: &EnsembleKrr, perm: &[usize]) -> EnsembleKrr {
    let mut parts = ens.clone().into_parts();
    parts.models = perm.iter().map(|&s| parts.models[s].clone()).collect();
    parts.centroids = parts.centroids.select_rows(perm);
    parts.shard_wall_seconds = perm.iter().map(|&s| parts.shard_wall_seconds[s]).collect();
    EnsembleKrr::from_parts(parts).expect("permuted parts stay consistent")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// With `m = k`, the prediction is a deterministic function of the
    /// shard *set*: any permutation of the stored shard order gives
    /// bitwise-identical decision values.
    #[test]
    fn route_all_prediction_is_shard_order_invariant(
        seed in 0..1_000u64,
        k in 2..5usize,
        rot in 1..4usize,
        random_sharding in 0..2usize,
    ) {
        let ds = hkrr_datasets::generate(&LETTER, 260, 40, seed);
        let strategy = if random_sharding == 1 {
            ShardStrategy::Random { seed: seed ^ 0xf00d }
        } else {
            ShardStrategy::Cluster
        };
        let ens = EnsembleKrr::fit(
            &ds.train,
            &ds.train_labels,
            &ensemble_config(k, k, strategy),
        ).expect("training failed");
        let reference = ens.decision_values(&ds.test);

        // A rotation plus a swap covers the permutation group's generators.
        let mut perm: Vec<usize> = (0..k).map(|i| (i + rot) % k).collect();
        perm.swap(0, k - 1);
        let permuted = permute_shards(&ens, &perm);
        prop_assert_eq!(permuted.decision_values(&ds.test), reference.clone());
        let reversed: Vec<usize> = (0..k).rev().collect();
        let rev = permute_shards(&ens, &reversed);
        prop_assert_eq!(rev.decision_values(&ds.test), reference);
    }

    /// A 1-shard ensemble is the monolithic model, bitwise: identical
    /// weights and identical decision values, for any dataset/seed.
    #[test]
    fn single_shard_ensemble_reproduces_the_monolithic_model_bitwise(
        seed in 0..1_000u64,
        spec_idx in 0..2usize,
        n in 120..260usize,
    ) {
        let spec = [&LETTER, &SUSY][spec_idx];
        let ds = hkrr_datasets::generate(spec, n, 30, seed);
        let cfg = EnsembleConfig {
            shards: 1,
            route_nearest: 1,
            strategy: ShardStrategy::Cluster,
            base: KrrConfig {
                h: spec.default_h,
                lambda: spec.default_lambda,
                solver: SolverKind::Hss,
                ..KrrConfig::default()
            },
        };
        let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).expect("ensemble");
        let mono = KrrModel::fit(&ds.train, &ds.train_labels, &cfg.base).expect("monolith");
        prop_assert_eq!(ens.models()[0].weights(), mono.weights());
        prop_assert_eq!(ens.decision_values(&ds.test), mono.decision_values(&ds.test));
        prop_assert_eq!(ens.predict(&ds.test), mono.predict(&ds.test));
    }
}

/// The `DecisionModel` seam end to end: a one-vs-all reduction whose
/// per-class classifiers are sharded ensembles.
#[test]
fn multiclass_reduction_accepts_ensembles_per_class() {
    let ds = hkrr_datasets::generate_multiclass(&hkrr_datasets::registry::PEN, 3, 240, 60, 5);
    let cfg = EnsembleConfig {
        shards: 2,
        route_nearest: 2,
        strategy: ShardStrategy::Cluster,
        base: KrrConfig {
            h: hkrr_datasets::registry::PEN.default_h,
            lambda: hkrr_datasets::registry::PEN.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        },
    };
    let per_class: Vec<EnsembleKrr> = (0..3)
        .map(|class| {
            let binary: Vec<f64> = ds
                .train_labels
                .iter()
                .map(|&l| if l == class { 1.0 } else { -1.0 })
                .collect();
            EnsembleKrr::fit(&ds.train, &binary, &cfg).unwrap()
        })
        .collect();
    let model = MulticlassKrr::from_classifiers(per_class).unwrap();
    assert_eq!(model.num_classes(), 3);
    let acc = model.accuracy(&ds.test, &ds.test_labels);
    assert!(acc > 0.75, "multiclass-over-ensembles accuracy {acc}");
}
