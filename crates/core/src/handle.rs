//! The model-handle abstraction: one prediction interface over a single
//! [`crate::KrrModel`] or any composite of models (e.g. a cluster-sharded
//! ensemble).
//!
//! The serving stack batches queries into `decision_values_into` calls and
//! otherwise only needs the model's input dimension and size, so anything
//! that implements [`DecisionModel`] can be loaded behind the prediction
//! engine, the one-vs-all reduction, or the TCP front-end — trained
//! in-process or restored from a model file. [`ModelHandle`] is the shared
//! trait-object form those layers pass around.

use crate::model::KrrModel;
use hkrr_linalg::Matrix;
use std::sync::Arc;

/// A trained model that maps test points to raw decision values.
///
/// Implementations must be `Send + Sync`: the serving engine shares one
/// model across its worker pool. The entry points mirror the buffer-reusing
/// [`KrrModel`] prediction API, so hot paths can avoid per-call allocation.
pub trait DecisionModel: Send + Sync {
    /// Raw input feature dimension expected at prediction time.
    fn dim(&self) -> usize;

    /// Total number of training points behind the model (summed over
    /// constituent models for composites).
    fn num_train(&self) -> usize;

    /// Raw decision values for each test point, into a caller buffer.
    ///
    /// # Panics
    /// Panics when `out.len() != test.nrows()` or the test dimension does
    /// not match [`DecisionModel::dim`].
    fn decision_values_into(&self, test: &Matrix, out: &mut [f64]);

    /// Allocating convenience form of [`DecisionModel::decision_values_into`].
    fn decision_values(&self, test: &Matrix) -> Vec<f64> {
        let mut out = vec![0.0; test.nrows()];
        self.decision_values_into(test, &mut out);
        out
    }

    /// Predicted ±1 labels, into a caller buffer.
    fn predict_into(&self, test: &Matrix, out: &mut [f64]) {
        self.decision_values_into(test, out);
        for s in out.iter_mut() {
            *s = if *s >= 0.0 { 1.0 } else { -1.0 };
        }
    }

    /// Allocating convenience form of [`DecisionModel::predict_into`].
    fn predict(&self, test: &Matrix) -> Vec<f64> {
        let mut out = vec![0.0; test.nrows()];
        self.predict_into(test, &mut out);
        out
    }

    /// Number of constituent models (1 for a plain [`KrrModel`], the shard
    /// count for an ensemble).
    fn num_models(&self) -> usize {
        1
    }

    /// Cumulative per-constituent-model routed-query counts, when the
    /// implementation tracks them (empty otherwise). Composite models use
    /// this to expose per-shard serving load through the engine's stats.
    fn model_loads(&self) -> Vec<u64> {
        Vec::new()
    }
}

/// The shared trait-object form of a [`DecisionModel`]: what the serving
/// engine and front-end hold, so a single model and an ensemble are
/// interchangeable behind one type.
pub type ModelHandle = Arc<dyn DecisionModel>;

impl DecisionModel for KrrModel {
    fn dim(&self) -> usize {
        KrrModel::dim(self)
    }

    fn num_train(&self) -> usize {
        KrrModel::num_train(self)
    }

    fn decision_values_into(&self, test: &Matrix, out: &mut [f64]) {
        KrrModel::decision_values_into(self, test, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KrrConfig, SolverKind};
    use hkrr_datasets::generate;
    use hkrr_datasets::registry::LETTER;

    #[test]
    fn krr_model_behind_the_trait_matches_its_inherent_api() {
        let ds = generate(&LETTER, 200, 40, 5);
        let cfg = KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        let handle: ModelHandle = Arc::new(model.clone());
        assert_eq!(handle.dim(), 16);
        assert_eq!(handle.num_train(), 200);
        assert_eq!(handle.num_models(), 1);
        assert!(handle.model_loads().is_empty());
        assert_eq!(
            handle.decision_values(&ds.test),
            model.decision_values(&ds.test)
        );
        assert_eq!(handle.predict(&ds.test), model.predict(&ds.test));
        let mut buf = vec![f64::NAN; 40];
        handle.decision_values_into(&ds.test, &mut buf);
        assert_eq!(buf, model.decision_values(&ds.test));
    }
}
