//! One-vs-all multi-class classification (Section 2 of the paper).
//!
//! For `c` classes the paper trains `c` binary classifiers that differ only
//! in the labels; each test point is assigned to the class whose classifier
//! reports the largest (confidence) decision value.
//!
//! The reduction is generic over [`DecisionModel`], so the per-class
//! classifiers can be plain [`KrrModel`]s (what [`MulticlassKrr::fit`]
//! trains) or any composite — e.g. a cluster-sharded ensemble per class,
//! assembled with [`MulticlassKrr::from_classifiers`].

use crate::config::KrrConfig;
use crate::handle::DecisionModel;
use crate::model::KrrModel;
use crate::KrrError;
use hkrr_linalg::Matrix;

/// A one-vs-all ensemble of binary classifiers. `M` defaults to
/// [`KrrModel`]; any [`DecisionModel`] works (the argmax reduction only
/// needs decision values).
pub struct MulticlassKrr<M: DecisionModel = KrrModel> {
    classifiers: Vec<M>,
}

impl MulticlassKrr<KrrModel> {
    /// Trains one binary classifier per class.
    ///
    /// `labels` are class indices in `0..num_classes`.
    pub fn fit(
        train: &Matrix,
        labels: &[usize],
        num_classes: usize,
        config: &KrrConfig,
    ) -> Result<Self, KrrError> {
        if num_classes < 2 {
            return Err(KrrError::InvalidInput(
                "multi-class problems need at least two classes".to_string(),
            ));
        }
        if labels.len() != train.nrows() {
            return Err(KrrError::InvalidInput(format!(
                "{} labels for {} training points",
                labels.len(),
                train.nrows()
            )));
        }
        if labels.iter().any(|&l| l >= num_classes) {
            return Err(KrrError::InvalidInput(
                "label index out of range".to_string(),
            ));
        }
        let mut classifiers = Vec::with_capacity(num_classes);
        for class in 0..num_classes {
            let binary: Vec<f64> = labels
                .iter()
                .map(|&l| if l == class { 1.0 } else { -1.0 })
                .collect();
            let mut model = KrrModel::fit(train, &binary, config)?;
            // One-vs-all keeps `num_classes` models alive at once; holding
            // every per-class HSS form + ULV factorization would multiply
            // the retained memory by the class count for factors nothing
            // here re-solves with. Prediction only needs points + weights.
            model.discard_factors();
            classifiers.push(model);
        }
        Ok(MulticlassKrr { classifiers })
    }
}

impl<M: DecisionModel> MulticlassKrr<M> {
    /// Assembles the one-vs-all reduction from pre-trained per-class
    /// classifiers (in class-index order). This is how composite models —
    /// e.g. one sharded ensemble per class — enter the multi-class path.
    pub fn from_classifiers(classifiers: Vec<M>) -> Result<Self, KrrError> {
        if classifiers.len() < 2 {
            return Err(KrrError::InvalidInput(
                "multi-class problems need at least two classifiers".to_string(),
            ));
        }
        let dim = classifiers[0].dim();
        if classifiers.iter().any(|c| c.dim() != dim) {
            return Err(KrrError::InvalidInput(
                "per-class classifiers disagree on the feature dimension".to_string(),
            ));
        }
        Ok(MulticlassKrr { classifiers })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classifiers.len()
    }

    /// Access to the underlying binary classifiers.
    pub fn classifiers(&self) -> &[M] {
        &self.classifiers
    }

    /// Per-class confidence values `|w_c · K'(x'_i, ·)|` is not used
    /// directly; the paper's rule is `argmax_c y'(c)_i`, implemented here on
    /// the raw decision values.
    pub fn decision_matrix(&self, test: &Matrix) -> Matrix {
        let m = test.nrows();
        let c = self.classifiers.len();
        let mut out = Matrix::zeros(m, c);
        for (j, clf) in self.classifiers.iter().enumerate() {
            out.set_col(j, &clf.decision_values(test));
        }
        out
    }

    /// Predicted class index for every test point.
    pub fn predict(&self, test: &Matrix) -> Vec<usize> {
        let scores = self.decision_matrix(test);
        (0..test.nrows())
            .map(|i| {
                let mut best = 0;
                let mut best_v = f64::NEG_INFINITY;
                for j in 0..self.classifiers.len() {
                    if scores[(i, j)] > best_v {
                        best_v = scores[(i, j)];
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Multi-class accuracy (fraction of exactly matching class labels).
    pub fn accuracy(&self, test: &Matrix, truth: &[usize]) -> f64 {
        assert_eq!(test.nrows(), truth.len(), "accuracy: length mismatch");
        if truth.is_empty() {
            return 0.0;
        }
        let pred = self.predict(test);
        let correct = pred
            .iter()
            .zip(truth.iter())
            .filter(|(p, t)| p == t)
            .count();
        correct as f64 / truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverKind;
    use hkrr_datasets::generate_multiclass;
    use hkrr_datasets::registry::PEN;

    fn config() -> KrrConfig {
        KrrConfig {
            h: PEN.default_h,
            lambda: PEN.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        }
    }

    #[test]
    fn one_vs_all_classifies_multiclass_digits() {
        let ds = generate_multiclass(&PEN, 4, 400, 120, 1);
        let model = MulticlassKrr::fit(&ds.train, &ds.train_labels, 4, &config()).unwrap();
        assert_eq!(model.num_classes(), 4);
        assert_eq!(model.classifiers().len(), 4);
        let acc = model.accuracy(&ds.test, &ds.test_labels);
        assert!(acc > 0.8, "multi-class accuracy {acc}");
    }

    #[test]
    fn decision_matrix_shape_and_argmax_consistency() {
        let ds = generate_multiclass(&PEN, 3, 200, 30, 2);
        let model = MulticlassKrr::fit(&ds.train, &ds.train_labels, 3, &config()).unwrap();
        let scores = model.decision_matrix(&ds.test);
        assert_eq!(scores.shape(), (30, 3));
        let pred = model.predict(&ds.test);
        for (i, &p) in pred.iter().enumerate() {
            for j in 0..3 {
                assert!(scores[(i, p)] >= scores[(i, j)]);
            }
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let ds = generate_multiclass(&PEN, 3, 60, 10, 3);
        assert!(MulticlassKrr::fit(&ds.train, &ds.train_labels, 1, &config()).is_err());
        assert!(MulticlassKrr::fit(&ds.train, &ds.train_labels[..50], 3, &config()).is_err());
        let bad_labels = vec![7usize; 60];
        assert!(MulticlassKrr::fit(&ds.train, &bad_labels, 3, &config()).is_err());
    }

    #[test]
    fn from_classifiers_rebuilds_an_equivalent_reduction() {
        let ds = generate_multiclass(&PEN, 3, 200, 30, 4);
        let fitted = MulticlassKrr::fit(&ds.train, &ds.train_labels, 3, &config()).unwrap();
        let rebuilt = MulticlassKrr::from_classifiers(fitted.classifiers().to_vec()).unwrap();
        assert_eq!(rebuilt.predict(&ds.test), fitted.predict(&ds.test));
        // Fewer than two classes is rejected.
        assert!(MulticlassKrr::from_classifiers(vec![fitted.classifiers()[0].clone()]).is_err());
    }
}
