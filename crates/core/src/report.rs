//! Per-run performance report: the metrics the paper tabulates.

use crate::config::SolverKind;

/// Timing, memory and rank information gathered during one training run.
///
/// The time breakdown matches Table 4 of the paper: H-matrix construction,
/// HSS construction split into the sampling products and everything else,
/// ULV factorization, and the triangular solve.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Which solver produced this report.
    pub solver: SolverKind,
    /// Number of training points.
    pub num_train: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Seconds spent clustering / reordering the input (Step 0).
    pub clustering_seconds: f64,
    /// Seconds spent assembling the dense kernel matrix (dense solver
    /// only; the compressed solvers never materialize it and report 0).
    pub assembly_seconds: f64,
    /// Seconds spent building the H-matrix sampler (0 when unused).
    pub h_construction_seconds: f64,
    /// Seconds spent in the HSS random-sampling products.
    pub hss_sampling_seconds: f64,
    /// Seconds spent in the rest of the HSS construction.
    pub hss_other_seconds: f64,
    /// Seconds spent in the ULV factorization (or dense Cholesky).
    pub factorization_seconds: f64,
    /// Seconds spent solving for the weight vector.
    pub solve_seconds: f64,
    /// Seconds spent in the PCG iteration (the `hss-pcg` solver only).
    pub pcg_seconds: f64,
    /// PCG iterations performed (0 for the direct solvers).
    pub pcg_iterations: usize,
    /// Relative residual `‖b − Ax‖ / ‖b‖` after every PCG iteration,
    /// starting with the initial residual (empty for the direct solvers).
    pub pcg_residual_history: Vec<f64>,
    /// Memory of the compressed (or dense) training matrix, in bytes.
    pub matrix_memory_bytes: usize,
    /// Memory of the H-matrix sampler, in bytes (0 when unused).
    pub sampler_memory_bytes: usize,
    /// Memory of the retained ULV factor store, in bytes (0 for the dense
    /// solver). With `factor_precision=f32` this drops to well under half
    /// the f64 figure — the headline win of the mixed-precision store.
    pub factor_bytes: usize,
    /// Maximum HSS rank (0 for the dense solver).
    pub max_rank: usize,
}

impl TrainingReport {
    /// Creates an empty report for the given solver and problem size.
    pub fn new(solver: SolverKind, num_train: usize, dim: usize) -> Self {
        TrainingReport {
            solver,
            num_train,
            dim,
            clustering_seconds: 0.0,
            assembly_seconds: 0.0,
            h_construction_seconds: 0.0,
            hss_sampling_seconds: 0.0,
            hss_other_seconds: 0.0,
            factorization_seconds: 0.0,
            solve_seconds: 0.0,
            pcg_seconds: 0.0,
            pcg_iterations: 0,
            pcg_residual_history: Vec::new(),
            matrix_memory_bytes: 0,
            sampler_memory_bytes: 0,
            factor_bytes: 0,
            max_rank: 0,
        }
    }

    /// Total HSS construction time (sampling + other).
    pub fn hss_construction_seconds(&self) -> f64 {
        self.hss_sampling_seconds + self.hss_other_seconds
    }

    /// Total training time (everything except prediction).
    pub fn total_seconds(&self) -> f64 {
        self.clustering_seconds
            + self.assembly_seconds
            + self.h_construction_seconds
            + self.hss_construction_seconds()
            + self.factorization_seconds
            + self.solve_seconds
            + self.pcg_seconds
    }

    /// Compressed-matrix memory in MB (Table 2 / Figure 5 / Figure 7a).
    pub fn matrix_memory_mb(&self) -> f64 {
        self.matrix_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Retained factor-store memory in MB (0 for the dense solver).
    pub fn factor_memory_mb(&self) -> f64 {
        self.factor_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl std::fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "solver={} n={} d={} mem={:.2}MB max-rank={}",
            self.solver.label(),
            self.num_train,
            self.dim,
            self.matrix_memory_mb(),
            self.max_rank
        )?;
        writeln!(
            f,
            "  clustering {:.3}s | H constr {:.3}s | HSS constr {:.3}s (sampling {:.3}s, other {:.3}s)",
            self.clustering_seconds,
            self.h_construction_seconds,
            self.hss_construction_seconds(),
            self.hss_sampling_seconds,
            self.hss_other_seconds
        )?;
        write!(
            f,
            "  assembly {:.3}s | factorization {:.3}s | solve {:.3}s | total {:.3}s",
            self.assembly_seconds,
            self.factorization_seconds,
            self.solve_seconds,
            self.total_seconds()
        )?;
        if self.solver == SolverKind::HssPcg {
            write!(
                f,
                "\n  pcg {:.3}s | {} iterations | final residual {:.2e} | factors {:.2}MB",
                self.pcg_seconds,
                self.pcg_iterations,
                self.pcg_residual_history.last().copied().unwrap_or(0.0),
                self.factor_memory_mb()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut r = TrainingReport::new(SolverKind::Hss, 1000, 8);
        r.clustering_seconds = 0.1;
        r.assembly_seconds = 0.05;
        r.h_construction_seconds = 0.2;
        r.hss_sampling_seconds = 0.3;
        r.hss_other_seconds = 0.4;
        r.factorization_seconds = 0.5;
        r.solve_seconds = 0.6;
        r.pcg_seconds = 0.15;
        assert!((r.hss_construction_seconds() - 0.7).abs() < 1e-12);
        assert!((r.total_seconds() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn pcg_fields_appear_only_for_the_pcg_solver() {
        let mut r = TrainingReport::new(SolverKind::HssPcg, 100, 4);
        r.pcg_seconds = 0.01;
        r.pcg_iterations = 7;
        r.pcg_residual_history = vec![1.0, 0.1, 1e-11];
        let text = r.to_string();
        assert!(text.contains("7 iterations"), "{text}");
        assert!(text.contains("solver=hss-pcg"), "{text}");
        let plain = TrainingReport::new(SolverKind::Hss, 100, 4).to_string();
        assert!(!plain.contains("iterations"), "{plain}");
    }

    #[test]
    fn memory_conversion_and_display() {
        let mut r = TrainingReport::new(SolverKind::DenseCholesky, 10, 2);
        r.matrix_memory_bytes = 2 * 1024 * 1024;
        assert!((r.matrix_memory_mb() - 2.0).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("solver=dense"));
        assert!(text.contains("mem=2.00MB"));
    }
}
