//! The binary kernel-ridge-regression classifier (Algorithm 1 of the paper).

use crate::config::{KrrConfig, SolverKind};
use crate::report::TrainingReport;
use crate::KrrError;
use hkrr_clustering::cluster;
use hkrr_hmatrix::{build_hmatrix, HOptions};
use hkrr_hss::construct::{compress_symmetric, HssOptions};
use hkrr_hss::{FactorPrecision, HssMatrix, UlvFactorization};
use hkrr_kernel::{cross_scores_into, KernelMatrix, NormalizationStats};
use hkrr_linalg::iterative::{pcg, PcgOptions, PcgResult};
use hkrr_linalg::operator::ShiftedOperator;
use hkrr_linalg::{cholesky, is_permutation, LinalgError, Matrix};
use hkrr_telemetry::log::{self, Level};
use std::time::Instant;

/// The compressed training operator and its factorization, retained after
/// an HSS fit so serving-side persistence can round-trip them and a loaded
/// model can solve for new label vectors without re-compressing or
/// re-factoring anything.
#[derive(Debug, Clone)]
pub struct TrainedFactors {
    /// The compressed `K + λI` (the shift is recorded in
    /// [`HssMatrix::diagonal_shift`]).
    pub hss: HssMatrix,
    /// Its ULV factorization, reusable for many right-hand sides.
    pub ulv: UlvFactorization,
}

/// Everything a [`KrrModel`] is made of, for persistence: the inverse of
/// the model's accessors, consumed by [`KrrModel::from_parts`].
#[derive(Debug, Clone)]
pub struct ModelParts {
    /// Normalized, reordered training points.
    pub train_points: Matrix,
    /// Weight vector in the reordered index space.
    pub weights: Vec<f64>,
    /// The kernel function.
    pub kernel: hkrr_kernel::KernelFunction,
    /// Normalization statistics fitted on the raw training data.
    pub norm_stats: NormalizationStats,
    /// Training report.
    pub report: TrainingReport,
    /// Training configuration.
    pub config: KrrConfig,
    /// Clustering permutation: position `i` of the reordered training set
    /// holds original point `permutation[i]`.
    pub permutation: Vec<usize>,
    /// Retained compressed operator + factorization (HSS solvers only).
    pub factors: Option<TrainedFactors>,
}

/// A trained binary classifier.
#[derive(Debug, Clone)]
pub struct KrrModel {
    /// Normalized, reordered training points (the order the weights refer to).
    train_points: Matrix,
    /// Weight vector `w = (K + λI)^{-1} y` in the reordered index space.
    weights: Vec<f64>,
    kernel: hkrr_kernel::KernelFunction,
    norm_stats: NormalizationStats,
    report: TrainingReport,
    config: KrrConfig,
    /// Clustering permutation (original index of each reordered position).
    permutation: Vec<usize>,
    /// Compressed operator + ULV factors, retained by the HSS solvers.
    factors: Option<TrainedFactors>,
}

impl KrrModel {
    /// Trains a classifier on `train` (rows are points) with ±1 `labels`.
    pub fn fit(train: &Matrix, labels: &[f64], config: &KrrConfig) -> Result<KrrModel, KrrError> {
        config.validate().map_err(KrrError::InvalidInput)?;
        let n = train.nrows();
        if n == 0 {
            return Err(KrrError::InvalidInput("empty training set".to_string()));
        }
        if labels.len() != n {
            return Err(KrrError::InvalidInput(format!(
                "{} labels for {} training points",
                labels.len(),
                n
            )));
        }
        if labels.iter().any(|l| !l.is_finite() || *l == 0.0) {
            return Err(KrrError::InvalidInput(
                "labels must be finite, non-zero (±1)".to_string(),
            ));
        }

        // Resolve the effective factor precision (env override included)
        // up front, and store the *effective* value in the model's config
        // so persistence and `solve_new_labels` see what actually ran.
        let mut config = *config;
        if config.solver == SolverKind::HssPcg {
            config.factor_precision = effective_factor_precision(&config);
        }
        let config = &config;

        let mut report = TrainingReport::new(config.solver, n, train.ncols());
        let mut fit_span = hkrr_telemetry::span!("train.fit");
        fit_span.annotate("n", n);
        fit_span.annotate("solver", format!("{:?}", config.solver));

        // Step 0a: normalization (fit on train only).
        let norm_stats = NormalizationStats::fit(train, config.normalization);
        let normalized = norm_stats.transform(train);

        // Step 0b: clustering-based reordering.
        let t = Instant::now();
        let ordering = {
            let _span = hkrr_telemetry::span!("train.clustering");
            cluster(&normalized, config.clustering, config.leaf_size)
        };
        report.clustering_seconds = t.elapsed().as_secs_f64();
        let permuted = normalized.select_rows(ordering.permutation());
        let permuted_labels: Vec<f64> = ordering.apply(labels);

        // Step 1: the (implicit) kernel matrix on the reordered points.
        let kernel = config.kernel();
        let km = KernelMatrix::new(permuted.clone(), kernel);

        // Step 2: solve (K + λI) w = y with the requested solver.
        let (weights, factors) = match config.solver {
            SolverKind::DenseCholesky => {
                let t = Instant::now();
                let k_dense = {
                    let _span = hkrr_telemetry::span!("train.assembly");
                    km.assemble_regularized(config.lambda)
                };
                // Dense assembly is its own phase — not HSS work (the
                // perf JSON reports the HSS fields as compression time).
                report.assembly_seconds = t.elapsed().as_secs_f64();
                report.matrix_memory_bytes = k_dense.memory_bytes();

                let t = Instant::now();
                let factor = {
                    let _span = hkrr_telemetry::span!("train.cholesky");
                    cholesky::cholesky(&k_dense)?
                };
                report.factorization_seconds = t.elapsed().as_secs_f64();

                let t = Instant::now();
                let w = {
                    let _span = hkrr_telemetry::span!("train.solve");
                    factor.solve(&permuted_labels)?
                };
                report.solve_seconds = t.elapsed().as_secs_f64();
                (w, None)
            }
            SolverKind::Hss | SolverKind::HssWithHSampling => {
                let hss_opts = HssOptions {
                    tolerance: config.tolerance,
                    seed: config.seed,
                    ..HssOptions::default()
                };
                let tree = ordering.tree().clone();

                // Optional H-matrix sampler (the paper's accelerated
                // sampling path).
                let sampler_h = if config.solver == SolverKind::HssWithHSampling {
                    let t = Instant::now();
                    let _span = hkrr_telemetry::span!("train.h_sampler");
                    let h = build_hmatrix(
                        &km,
                        &permuted,
                        ordering.tree(),
                        &HOptions {
                            tolerance: config.tolerance,
                            eta: config.eta,
                            max_rank: 0,
                        },
                    );
                    report.h_construction_seconds = t.elapsed().as_secs_f64();
                    report.sampler_memory_bytes = h.memory_bytes();
                    Some(h)
                } else {
                    None
                };

                let mut hss = {
                    let _span = hkrr_telemetry::span!("train.hss_compress");
                    match &sampler_h {
                        Some(h) => compress_symmetric(&km, h, tree, &hss_opts)?,
                        None => compress_symmetric(&km, &km, tree, &hss_opts)?,
                    }
                };
                report.hss_sampling_seconds = hss.construction_stats().sampling_seconds;
                report.hss_other_seconds = hss.construction_stats().other_seconds;
                report.matrix_memory_bytes = hss.memory_bytes();
                report.max_rank = hss.max_rank();
                log_compression_event(&report, &hss);

                hss.set_diagonal_shift(config.lambda);

                let t = Instant::now();
                let factor = {
                    let _span = hkrr_telemetry::span!("train.ulv_factor");
                    UlvFactorization::factor(&hss)?
                };
                report.factorization_seconds = t.elapsed().as_secs_f64();

                let t = Instant::now();
                let w = {
                    let _span = hkrr_telemetry::span!("train.solve");
                    factor.solve(&permuted_labels)?
                };
                report.solve_seconds = t.elapsed().as_secs_f64();
                record_factor_bytes(&mut report, &factor);
                (w, Some(TrainedFactors { hss, ulv: factor }))
            }
            SolverKind::HssPcg => {
                // Compress an order of magnitude looser than the direct
                // path: the result is only a preconditioner, so its error
                // is removed by the Krylov iteration instead of ending up
                // in the weights.
                let hss_opts = HssOptions {
                    tolerance: config.tolerance * config.pcg_loosening,
                    seed: config.seed,
                    ..HssOptions::default()
                };
                let tree = ordering.tree().clone();
                let mut hss = {
                    let _span = hkrr_telemetry::span!("train.hss_compress");
                    compress_symmetric(&km, &km, tree, &hss_opts)?
                };
                report.hss_sampling_seconds = hss.construction_stats().sampling_seconds;
                report.hss_other_seconds = hss.construction_stats().other_seconds;
                report.matrix_memory_bytes = hss.memory_bytes();
                report.max_rank = hss.max_rank();
                log_compression_event(&report, &hss);

                hss.set_diagonal_shift(config.lambda);

                let t = Instant::now();
                let mut factor = {
                    let _span = hkrr_telemetry::span!("train.ulv_factor");
                    UlvFactorization::factor(&hss)?
                };
                // Always factor in f64 (exact pivoting), then demote the
                // store: the demotion error behaves like extra compression
                // looseness, which PCG removes anyway.
                if config.factor_precision == FactorPrecision::F32 {
                    let _span = hkrr_telemetry::span!("train.ulv_demote");
                    factor = factor.to_f32();
                }
                report.factorization_seconds = t.elapsed().as_secs_f64();
                record_factor_bytes(&mut report, &factor);

                // PCG on the *exact* regularized kernel operator: only
                // matvecs, nothing assembled, nothing compressed.
                let t = Instant::now();
                let mut pcg_span = hkrr_telemetry::span!("train.pcg");
                let result = run_pcg(&km, config, &factor, &permuted_labels)?;
                pcg_span.annotate("iterations", result.iterations);
                drop(pcg_span);
                report.pcg_seconds = t.elapsed().as_secs_f64();
                report.pcg_iterations = result.iterations;
                report.pcg_residual_history = result.residual_history.clone();
                (result.x, Some(TrainedFactors { hss, ulv: factor }))
            }
        };

        Ok(KrrModel {
            train_points: permuted,
            weights,
            kernel,
            norm_stats,
            report,
            config: *config,
            permutation: ordering.permutation().to_vec(),
            factors,
        })
    }

    /// Rebuilds a model from persisted parts, validating their mutual
    /// consistency. The numerical content is taken as-is, so a
    /// save → load round trip reproduces predictions bitwise.
    pub fn from_parts(parts: ModelParts) -> Result<KrrModel, KrrError> {
        let ModelParts {
            train_points,
            weights,
            kernel,
            norm_stats,
            report,
            config,
            permutation,
            factors,
        } = parts;
        let n = train_points.nrows();
        if weights.len() != n {
            return Err(KrrError::InvalidInput(format!(
                "{} weights for {} training points",
                weights.len(),
                n
            )));
        }
        if norm_stats.dim() != train_points.ncols() {
            return Err(KrrError::InvalidInput(format!(
                "normalization covers {} features, training points have {}",
                norm_stats.dim(),
                train_points.ncols()
            )));
        }
        if permutation.len() != n || !is_permutation(&permutation) {
            return Err(KrrError::InvalidInput(format!(
                "clustering permutation is not a permutation of 0..{n}"
            )));
        }
        if let Some(f) = &factors {
            if f.hss.dim() != n || f.ulv.dim() != n {
                return Err(KrrError::InvalidInput(format!(
                    "retained factors are {}x{} / {}x{}, model has {n} points",
                    f.hss.dim(),
                    f.hss.dim(),
                    f.ulv.dim(),
                    f.ulv.dim()
                )));
            }
        }
        Ok(KrrModel {
            train_points,
            weights,
            kernel,
            norm_stats,
            report,
            config,
            permutation,
            factors,
        })
    }

    /// Decomposes the model into its persistable parts (the inverse of
    /// [`KrrModel::from_parts`]).
    pub fn into_parts(self) -> ModelParts {
        ModelParts {
            train_points: self.train_points,
            weights: self.weights,
            kernel: self.kernel,
            norm_stats: self.norm_stats,
            report: self.report,
            config: self.config,
            permutation: self.permutation,
            factors: self.factors,
        }
    }

    /// Raw decision values `w · K'(x'_i, ·)` for each test point.
    pub fn decision_values(&self, test: &Matrix) -> Vec<f64> {
        let mut out = vec![0.0; test.nrows()];
        self.decision_values_into(test, &mut out);
        out
    }

    /// [`KrrModel::decision_values`] into a caller-provided buffer, so hot
    /// serving paths can reuse allocations across prediction batches (no
    /// per-call clone of the training points either — the cross-kernel is
    /// evaluated against borrowed storage).
    ///
    /// # Panics
    /// Panics when `out.len() != test.nrows()` or the test dimension does
    /// not match the training dimension.
    pub fn decision_values_into(&self, test: &Matrix, out: &mut [f64]) {
        let test_n = self.norm_stats.transform(test);
        cross_scores_into(&test_n, &self.train_points, self.kernel, &self.weights, out);
    }

    /// Predicted ±1 labels (Step 4 of Algorithm 1).
    pub fn predict(&self, test: &Matrix) -> Vec<f64> {
        let mut out = vec![0.0; test.nrows()];
        self.predict_into(test, &mut out);
        out
    }

    /// [`KrrModel::predict`] into a caller-provided buffer.
    pub fn predict_into(&self, test: &Matrix, out: &mut [f64]) {
        self.decision_values_into(test, out);
        for s in out.iter_mut() {
            *s = if *s >= 0.0 { 1.0 } else { -1.0 };
        }
    }

    /// Solves `(K + λI) w = y` for a fresh label vector using the retained
    /// ULV factorization — no re-clustering, re-compression or
    /// re-factorization. `labels` are given in the *original* training
    /// order (the same order [`KrrModel::fit`] consumed); the stored
    /// clustering permutation is applied internally.
    ///
    /// Returns the new weight vector (in the reordered index space, like
    /// [`KrrModel::weights`]). Fails for models trained with the dense
    /// solver, which retains no factorization.
    pub fn solve_new_labels(&self, labels: &[f64]) -> Result<Vec<f64>, KrrError> {
        if labels.len() != self.num_train() {
            return Err(KrrError::InvalidInput(format!(
                "{} labels for {} training points",
                labels.len(),
                self.num_train()
            )));
        }
        let factors = self.factors.as_ref().ok_or_else(|| {
            KrrError::InvalidInput(
                "model retains no factorization (dense solver, or factors discarded)".to_string(),
            )
        })?;
        let permuted: Vec<f64> = self.permutation.iter().map(|&i| labels[i]).collect();
        if self.config.solver == SolverKind::HssPcg {
            // The retained ULV is only a preconditioner of the exact
            // system: re-run PCG with it, exactly as `fit` did, so new
            // weights carry the same accuracy as the originals. The
            // point-matrix clone is one O(n·d) copy against the
            // O(iters·n²·d) the iteration itself costs, and routing both
            // paths through the same KernelMatrix keeps the arithmetic
            // bitwise identical to training.
            let km = KernelMatrix::new(self.train_points.clone(), self.kernel);
            return Ok(run_pcg(&km, &self.config, &factors.ulv, &permuted)?.x);
        }
        Ok(factors.ulv.solve(&permuted)?)
    }

    /// The weight vector (in the reordered training index space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The normalized, reordered training points the weights refer to.
    pub fn train_points(&self) -> &Matrix {
        &self.train_points
    }

    /// The kernel function the model predicts with.
    pub fn kernel(&self) -> hkrr_kernel::KernelFunction {
        self.kernel
    }

    /// The normalization statistics fitted on the raw training data.
    pub fn norm_stats(&self) -> &NormalizationStats {
        &self.norm_stats
    }

    /// The clustering permutation: position `i` of the reordered training
    /// set holds original point `permutation()[i]`.
    pub fn permutation(&self) -> &[usize] {
        &self.permutation
    }

    /// The retained compressed operator + ULV factorization (`None` for the
    /// dense solver or after [`KrrModel::discard_factors`]).
    pub fn factors(&self) -> Option<&TrainedFactors> {
        self.factors.as_ref()
    }

    /// Drops the retained factorization to reclaim memory. Prediction is
    /// unaffected; [`KrrModel::solve_new_labels`] stops working.
    pub fn discard_factors(&mut self) {
        self.factors = None;
    }

    /// Raw input feature dimension the model expects at prediction time.
    pub fn dim(&self) -> usize {
        self.norm_stats.dim()
    }

    /// Performance report of the training run.
    pub fn report(&self) -> &TrainingReport {
        &self.report
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &KrrConfig {
        &self.config
    }

    /// Number of training points.
    pub fn num_train(&self) -> usize {
        self.train_points.nrows()
    }
}

/// Resolves the factor-storage precision for an `hss-pcg` fit: the
/// `HKRR_FACTOR_PRECISION` environment variable (`f64` or `f32`,
/// case-insensitive) overrides [`KrrConfig::factor_precision`] so CI and
/// benchmark matrices can flip the whole suite without touching code.
/// An unparseable value panics loudly — a silently ignored typo would run
/// the entire suite at the wrong precision.
fn effective_factor_precision(config: &KrrConfig) -> FactorPrecision {
    match std::env::var("HKRR_FACTOR_PRECISION") {
        Ok(raw) => FactorPrecision::parse(&raw)
            .unwrap_or_else(|| panic!("HKRR_FACTOR_PRECISION must be `f64` or `f32`, got `{raw}`")),
        Err(_) => config.factor_precision,
    }
}

/// One structured event-log line per HSS compression (see
/// `hkrr_telemetry::log`): the rank/bytes/wall summary an operator reads
/// off `HKRR_LOG` to see where a slow fit spent its time. No-op (one
/// relaxed load) when event logging is off.
fn log_compression_event(report: &TrainingReport, hss: &HssMatrix) {
    log::event(Level::Info, "train.hss_compress")
        .num("n", hss.dim())
        .num("max_rank", report.max_rank)
        .num("bytes", report.matrix_memory_bytes)
        .num("samples", hss.construction_stats().samples_used)
        .num("restarts", hss.construction_stats().restarts)
        .num("sampling_us", (report.hss_sampling_seconds * 1e6) as u64)
        .num("other_us", (report.hss_other_seconds * 1e6) as u64)
        .emit();
}

/// Records the retained factor store's memory in the report and publishes
/// it as the `hkrr_train_factor_bytes{precision}` gauge, so the f32 memory
/// win is visible both per-run and on a metrics scrape. Also lands the
/// `train.ulv_factor` event-log line (precision, bytes, wall).
fn record_factor_bytes(report: &mut TrainingReport, ulv: &UlvFactorization) {
    report.factor_bytes = ulv.memory_bytes();
    hkrr_telemetry::global()
        .gauge(
            "hkrr_train_factor_bytes",
            "Memory of the retained ULV factor store after training, in bytes",
            &[("precision", ulv.precision().as_str())],
        )
        .set(report.factor_bytes as f64);
    log::event(Level::Info, "train.ulv_factor")
        .field("precision", ulv.precision().as_str())
        .num("bytes", report.factor_bytes)
        .num("wall_us", (report.factorization_seconds * 1e6) as u64)
        .emit();
}

/// The PCG step of the `hss-pcg` solver: conjugate gradients on the exact
/// shifted kernel operator, preconditioned by the loose-tolerance ULV
/// factorization. Shared between [`KrrModel::fit`] and
/// [`KrrModel::solve_new_labels`] so a re-solve performs the identical
/// arithmetic (and reproduces the training weights bitwise for the
/// original labels).
fn run_pcg(
    km: &KernelMatrix,
    config: &KrrConfig,
    ulv: &UlvFactorization,
    rhs: &[f64],
) -> Result<PcgResult, KrrError> {
    let shifted = ShiftedOperator::new(km, config.lambda);
    let opts = PcgOptions {
        tolerance: config.pcg_tolerance,
        max_iterations: config.pcg_max_iterations,
    };
    let result = pcg(&shifted, rhs, ulv, &opts)?;
    if !result.converged {
        return Err(KrrError::Linalg(LinalgError::NoConvergence {
            iterations: result.iterations,
        }));
    }
    if log::enabled() {
        // Residual milestones: the first iteration crossing each decade,
        // so convergence stalls are visible in the event log without
        // shipping the whole history.
        let mut milestone = 0.1_f64;
        for (i, &r) in result.residual_history.iter().enumerate() {
            if r <= milestone {
                log::event(Level::Debug, "train.pcg_milestone")
                    .num("iteration", i)
                    .num("residual", r)
                    .emit();
                while milestone >= r && milestone > f64::MIN_POSITIVE {
                    milestone /= 10.0;
                }
            }
        }
        log::event(Level::Info, "train.pcg")
            .num("iterations", result.iterations)
            .num(
                "final_residual",
                result.residual_history.last().copied().unwrap_or(0.0),
            )
            .emit();
    }
    Ok(result)
}

/// Classification accuracy: the fraction of predictions whose sign matches
/// the true label (Eq. 2.1 of the paper).
pub fn accuracy(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "accuracy: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let correct = predicted
        .iter()
        .zip(truth.iter())
        .filter(|(p, t)| p.signum() == t.signum())
        .count();
    correct as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KrrConfig, SolverKind};
    use hkrr_clustering::ClusteringMethod;
    use hkrr_datasets::generate;
    use hkrr_datasets::registry::LETTER;

    fn quick_config(solver: SolverKind) -> KrrConfig {
        KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver,
            ..KrrConfig::default()
        }
    }

    #[test]
    fn dense_baseline_classifies_separable_data() {
        let ds = generate(&LETTER, 400, 120, 1);
        let model = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::DenseCholesky),
        )
        .unwrap();
        let pred = model.predict(&ds.test);
        let acc = accuracy(&pred, &ds.test_labels);
        assert!(acc > 0.9, "dense accuracy {acc}");
        assert_eq!(model.num_train(), 400);
    }

    #[test]
    fn hss_solver_matches_dense_accuracy() {
        let ds = generate(&LETTER, 500, 150, 2);
        let dense = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::DenseCholesky),
        )
        .unwrap();
        let hss =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        let acc_dense = accuracy(&dense.predict(&ds.test), &ds.test_labels);
        let acc_hss = accuracy(&hss.predict(&ds.test), &ds.test_labels);
        assert!(
            (acc_dense - acc_hss).abs() <= 0.03,
            "dense {acc_dense} vs HSS {acc_hss}"
        );
        assert!(hss.report().max_rank > 0);
    }

    #[test]
    fn h_sampling_path_produces_usable_model() {
        let ds = generate(&LETTER, 400, 100, 3);
        let model = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::HssWithHSampling),
        )
        .unwrap();
        let acc = accuracy(&model.predict(&ds.test), &ds.test_labels);
        assert!(acc > 0.85, "hss+h accuracy {acc}");
        assert!(model.report().h_construction_seconds >= 0.0);
        assert!(model.report().sampler_memory_bytes > 0);
    }

    #[test]
    fn hss_pcg_solves_the_exact_system_with_loose_compression() {
        let ds = generate(&LETTER, 500, 150, 2);
        let dense = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::DenseCholesky),
        )
        .unwrap();
        let hss =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        let pcg_model = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::HssPcg),
        )
        .unwrap();

        // PCG runs on the exact operator, so its predictions match the
        // dense (exact) solver to solver precision — accuracy the direct
        // HSS path cannot reach at its compression tolerance.
        let dv_dense = dense.decision_values(&ds.test);
        let dv_pcg = pcg_model.decision_values(&ds.test);
        let rmse = dv_dense
            .iter()
            .zip(dv_pcg.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
            / (dv_dense.len() as f64).sqrt();
        assert!(rmse < 1e-6, "hss-pcg vs dense prediction RMSE {rmse}");

        // Same test accuracy as the direct HSS solve.
        let acc_hss = accuracy(&hss.predict(&ds.test), &ds.test_labels);
        let acc_pcg = accuracy(&pcg_model.predict(&ds.test), &ds.test_labels);
        assert!(
            (acc_hss - acc_pcg).abs() <= 0.02,
            "hss {acc_hss} vs hss-pcg {acc_pcg}"
        );

        // The preconditioner really was compressed 10× looser (the
        // memory payoff is asserted on the medium workload in the
        // integration suite; on tiny problems compressed size is not
        // monotone in the tolerance).
        let r = pcg_model.report();
        assert!(r.max_rank > 0);
        assert_eq!(pcg_model.config().pcg_loosening, 10.0);
        // Iteration metrics are recorded.
        assert!(r.pcg_iterations > 0);
        assert!(r.pcg_seconds > 0.0);
        assert_eq!(r.pcg_residual_history.len(), r.pcg_iterations + 1);
        assert_eq!(r.pcg_residual_history[0], 1.0);
        assert!(
            r.pcg_residual_history.last().unwrap() <= &pcg_model.config().pcg_tolerance,
            "history {:?}",
            r.pcg_residual_history
        );
    }

    #[test]
    fn hss_pcg_with_f32_factors_matches_the_f64_run() {
        let ds = generate(&LETTER, 400, 100, 9);
        let f64_model = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::HssPcg),
        )
        .unwrap();
        let f32_model = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::HssPcg).with_factor_precision(FactorPrecision::F32),
        )
        .unwrap();
        // The stored factorization really is single precision, at well
        // under half the f64 footprint.
        let ulv = &f32_model.factors().unwrap().ulv;
        assert_eq!(ulv.precision(), FactorPrecision::F32);
        assert_eq!(f32_model.config().factor_precision, FactorPrecision::F32);
        let f64_bytes = f64_model.report().factor_bytes;
        let f32_bytes = f32_model.report().factor_bytes;
        assert!(f64_bytes > 0 && f32_bytes > 0);
        assert!(
            f32_bytes * 2 <= f64_bytes,
            "f32 factors {f32_bytes}B vs f64 {f64_bytes}B"
        );
        // Both iterations converged on the same exact operator to the same
        // tolerance, so predictions agree to solver precision.
        let dv64 = f64_model.decision_values(&ds.test);
        let dv32 = f32_model.decision_values(&ds.test);
        let rmse = dv64
            .iter()
            .zip(dv32.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
            / (dv64.len() as f64).sqrt();
        assert!(rmse < 1e-6, "f32 vs f64 factor prediction RMSE {rmse}");
        assert!(
            f32_model.report().pcg_iterations
                <= f64_model.report().pcg_iterations + f64_model.report().pcg_iterations / 2 + 2,
            "f32 {} vs f64 {} iterations",
            f32_model.report().pcg_iterations,
            f64_model.report().pcg_iterations
        );
        // Re-solving with the retained f32 preconditioner reproduces the
        // training weights bitwise, like the f64 path.
        let w = f32_model.solve_new_labels(&ds.train_labels).unwrap();
        assert_eq!(w, f32_model.weights());
    }

    #[test]
    fn hss_pcg_solve_new_labels_reruns_pcg_bitwise() {
        let ds = generate(&LETTER, 260, 30, 21);
        let model = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::HssPcg),
        )
        .unwrap();
        // The identical PCG arithmetic on the identical inputs: bitwise.
        let w = model.solve_new_labels(&ds.train_labels).unwrap();
        assert_eq!(w, model.weights());
        // A genuinely different right-hand side gives different weights.
        let flipped: Vec<f64> = ds.train_labels.iter().map(|l| -l).collect();
        assert_ne!(model.solve_new_labels(&flipped).unwrap(), model.weights());
    }

    #[test]
    fn dense_assembly_time_is_not_misattributed_to_hss() {
        let ds = generate(&LETTER, 300, 30, 8);
        let dense = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::DenseCholesky),
        )
        .unwrap();
        let r = dense.report();
        assert!(r.assembly_seconds > 0.0);
        assert_eq!(r.hss_other_seconds, 0.0);
        assert_eq!(r.hss_sampling_seconds, 0.0);
        // HSS solvers never assemble the dense matrix.
        let hss =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        assert_eq!(hss.report().assembly_seconds, 0.0);
    }

    #[test]
    fn hss_memory_is_reported_and_below_dense_for_clustered_order() {
        let ds = generate(&LETTER, 600, 50, 4);
        let cfg =
            quick_config(SolverKind::Hss).with_clustering(ClusteringMethod::TwoMeans { seed: 1 });
        let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        let dense_bytes = 600 * 600 * 8;
        assert!(model.report().matrix_memory_bytes > 0);
        assert!(
            model.report().matrix_memory_bytes < dense_bytes,
            "HSS memory {} should be below dense {}",
            model.report().matrix_memory_bytes,
            dense_bytes
        );
    }

    #[test]
    fn predictions_are_signs() {
        let ds = generate(&LETTER, 200, 40, 5);
        let model =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        for p in model.predict(&ds.test) {
            assert!(p == 1.0 || p == -1.0);
        }
        // Decision values carry the magnitudes used by one-vs-all.
        let dv = model.decision_values(&ds.test);
        assert_eq!(dv.len(), 40);
        assert!(dv.iter().any(|v| v.abs() > 0.0));
    }

    #[test]
    fn into_parts_from_parts_roundtrips_predictions_bitwise() {
        let ds = generate(&LETTER, 300, 60, 11);
        let model =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        let reference = model.decision_values(&ds.test);
        let rebuilt = KrrModel::from_parts(model.clone().into_parts()).unwrap();
        assert_eq!(rebuilt.decision_values(&ds.test), reference);
        assert_eq!(rebuilt.weights(), model.weights());
        assert_eq!(rebuilt.permutation(), model.permutation());
        assert!(rebuilt.factors().is_some(), "HSS fit retains its factors");
        assert_eq!(rebuilt.dim(), 16);
    }

    #[test]
    fn from_parts_rejects_inconsistent_pieces() {
        let ds = generate(&LETTER, 100, 10, 12);
        let model =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        // Wrong weight count.
        let mut parts = model.clone().into_parts();
        parts.weights.pop();
        assert!(matches!(
            KrrModel::from_parts(parts),
            Err(KrrError::InvalidInput(_))
        ));
        // Corrupted permutation.
        let mut parts = model.clone().into_parts();
        parts.permutation[0] = parts.permutation[1];
        assert!(matches!(
            KrrModel::from_parts(parts),
            Err(KrrError::InvalidInput(_))
        ));
    }

    #[test]
    fn buffered_prediction_paths_match_allocating_ones() {
        let ds = generate(&LETTER, 250, 70, 13);
        let model =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        let dv = model.decision_values(&ds.test);
        let pred = model.predict(&ds.test);
        let mut buf = vec![f64::NAN; 70];
        model.decision_values_into(&ds.test, &mut buf);
        assert_eq!(buf, dv);
        model.predict_into(&ds.test, &mut buf);
        assert_eq!(buf, pred);
    }

    #[test]
    fn solve_new_labels_reuses_the_factorization() {
        let ds = generate(&LETTER, 200, 20, 14);
        let model =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        // Solving for the original labels reproduces the weights bitwise:
        // the exact same stored factors, the exact same arithmetic.
        let w = model.solve_new_labels(&ds.train_labels).unwrap();
        assert_eq!(w, model.weights());
        // Flipped labels flip the weights' meaning — a genuinely new solve.
        let flipped: Vec<f64> = ds.train_labels.iter().map(|l| -l).collect();
        let w_flipped = model.solve_new_labels(&flipped).unwrap();
        assert_ne!(w_flipped, model.weights());
        // Dense models retain no factors.
        let dense = KrrModel::fit(
            &ds.train,
            &ds.train_labels,
            &quick_config(SolverKind::DenseCholesky),
        )
        .unwrap();
        assert!(dense.factors().is_none());
        assert!(dense.solve_new_labels(&ds.train_labels).is_err());
        // Wrong label count is rejected before touching the factors.
        assert!(model.solve_new_labels(&ds.train_labels[..10]).is_err());
        // Discarding factors frees them (and disables new solves).
        let mut discarded = model.clone();
        discarded.discard_factors();
        assert!(discarded.factors().is_none());
        assert!(discarded.solve_new_labels(&ds.train_labels).is_err());
        assert_eq!(
            discarded.decision_values(&ds.test),
            model.decision_values(&ds.test)
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let ds = generate(&LETTER, 50, 10, 6);
        let cfg = quick_config(SolverKind::DenseCholesky);
        // Wrong label count.
        assert!(matches!(
            KrrModel::fit(&ds.train, &ds.train_labels[..40], &cfg),
            Err(KrrError::InvalidInput(_))
        ));
        // Zero labels.
        let zeros = vec![0.0; 50];
        assert!(matches!(
            KrrModel::fit(&ds.train, &zeros, &cfg),
            Err(KrrError::InvalidInput(_))
        ));
        // Empty training set.
        assert!(matches!(
            KrrModel::fit(&Matrix::zeros(0, 16), &[], &cfg),
            Err(KrrError::InvalidInput(_))
        ));
        // Invalid hyperparameter.
        assert!(KrrModel::fit(&ds.train, &ds.train_labels, &cfg.with_h(-1.0)).is_err());
    }

    #[test]
    fn accuracy_metric() {
        assert_eq!(
            accuracy(&[1.0, -1.0, 1.0, 1.0], &[1.0, -1.0, -1.0, 1.0]),
            0.75
        );
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[2.5, -0.1], &[1.0, -1.0]), 1.0);
    }

    #[test]
    fn report_time_breakdown_is_populated() {
        let ds = generate(&LETTER, 300, 30, 7);
        let model =
            KrrModel::fit(&ds.train, &ds.train_labels, &quick_config(SolverKind::Hss)).unwrap();
        let r = model.report();
        assert_eq!(r.num_train, 300);
        assert_eq!(r.dim, 16);
        assert!(r.total_seconds() > 0.0);
        assert!(r.hss_construction_seconds() > 0.0);
        assert!(r.factorization_seconds >= 0.0);
    }
}
