//! Training configuration.

use hkrr_clustering::ClusteringMethod;
use hkrr_hss::FactorPrecision;
use hkrr_kernel::{KernelFunction, Normalizer};

/// The solver used for the training system `(K + λI) w = y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// Assemble the dense kernel matrix and solve with Cholesky — the exact
    /// (non-compressed) baseline of the paper, `O(n²)` memory, `O(n³)` time.
    DenseCholesky,
    /// Randomized HSS compression with dense kernel-matrix sampling,
    /// factored with ULV.  Sampling costs `O(n²)` per random block.
    Hss,
    /// HSS compression whose random sampling products are evaluated through
    /// an intermediate H-matrix approximation — the paper's accelerated
    /// construction (Section 3.2 / Table 4).
    HssWithHSampling,
    /// HSS-preconditioned conjugate gradients: compress `K + λI` at a
    /// *looser* tolerance ([`KrrConfig::pcg_loosening`] × the configured
    /// one), ULV-factor that cheap compression, and use it only as a
    /// preconditioner for matrix-free PCG on the **exact** implicit kernel
    /// operator. The Krylov iteration removes the compression error, so
    /// the answer solves the uncompressed system to
    /// [`KrrConfig::pcg_tolerance`] — accuracy the direct HSS path can only
    /// buy with much tighter (slower, larger) compression.
    HssPcg,
}

impl SolverKind {
    /// Short label used in reports and benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            SolverKind::DenseCholesky => "dense",
            SolverKind::Hss => "hss",
            SolverKind::HssWithHSampling => "hss+h",
            SolverKind::HssPcg => "hss-pcg",
        }
    }
}

/// Configuration of one kernel-ridge-regression training run.
#[derive(Debug, Clone, Copy)]
pub struct KrrConfig {
    /// Gaussian bandwidth `h`.
    pub h: f64,
    /// Ridge regularization `λ`.
    pub lambda: f64,
    /// Clustering / reordering method (Step 0 of Algorithm 1).
    pub clustering: ClusteringMethod,
    /// HSS / H-matrix leaf size (the paper uses 16).
    pub leaf_size: usize,
    /// Feature normalization (the paper's default is z-score).
    pub normalization: Normalizer,
    /// Which solver to use for the training system.
    pub solver: SolverKind,
    /// Relative compression tolerance for HSS (and ACA) compression.
    pub tolerance: f64,
    /// Admissibility parameter for the H-matrix sampler.
    pub eta: f64,
    /// Seed for every randomized component (sampling, 2-means seeding).
    pub seed: u64,
    /// Relative-residual convergence threshold of the PCG iteration
    /// ([`SolverKind::HssPcg`] only).
    pub pcg_tolerance: f64,
    /// Iteration budget of the PCG solve ([`SolverKind::HssPcg`] only).
    pub pcg_max_iterations: usize,
    /// How much looser than [`KrrConfig::tolerance`] the preconditioner's
    /// HSS compression runs ([`SolverKind::HssPcg`] only; must be ≥ 1).
    pub pcg_loosening: f64,
    /// Storage precision of the ULV factors ([`SolverKind::HssPcg`] only).
    ///
    /// `F32` stores the already-loose preconditioner factors in single
    /// precision — less than half the factor memory and bandwidth per
    /// apply, paid for with a few extra PCG iterations on the exact f64
    /// operator. The default `F64` keeps the bitwise-pinned behavior.
    pub factor_precision: FactorPrecision,
}

impl Default for KrrConfig {
    fn default() -> Self {
        KrrConfig {
            h: 1.0,
            lambda: 1.0,
            clustering: ClusteringMethod::TwoMeans { seed: 0x2e35 },
            leaf_size: hkrr_clustering::DEFAULT_LEAF_SIZE,
            normalization: Normalizer::ZScore,
            solver: SolverKind::Hss,
            // The paper reports that a compression tolerance of 0.1 does not
            // degrade classification accuracy; 1e-2 keeps a safety margin.
            tolerance: 1e-2,
            eta: 2.0,
            seed: 0xacce55,
            // PCG solves the exact operator, so the residual tolerance can
            // sit far below any compression tolerance at modest iteration
            // cost (the preconditioner does the heavy lifting).
            pcg_tolerance: 1e-10,
            pcg_max_iterations: 500,
            pcg_loosening: 10.0,
            factor_precision: FactorPrecision::F64,
        }
    }
}

impl KrrConfig {
    /// Returns a copy with a different bandwidth.
    pub fn with_h(mut self, h: f64) -> Self {
        self.h = h;
        self
    }

    /// Returns a copy with a different regularization.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Returns a copy with a different clustering method.
    pub fn with_clustering(mut self, clustering: ClusteringMethod) -> Self {
        self.clustering = clustering;
        self
    }

    /// Returns a copy with a different solver.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Returns a copy with a different factor-storage precision.
    pub fn with_factor_precision(mut self, precision: FactorPrecision) -> Self {
        self.factor_precision = precision;
        self
    }

    /// The Gaussian kernel described by this configuration.
    pub fn kernel(&self) -> KernelFunction {
        KernelFunction::gaussian(self.h)
    }

    /// Basic validation of the numeric parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.h <= 0.0 || !self.h.is_finite() {
            return Err(format!("bandwidth h must be positive, got {}", self.h));
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(format!("lambda must be non-negative, got {}", self.lambda));
        }
        if self.leaf_size == 0 {
            return Err("leaf_size must be at least 1".to_string());
        }
        if self.tolerance <= 0.0 {
            return Err("tolerance must be positive".to_string());
        }
        if self.pcg_tolerance <= 0.0 || !self.pcg_tolerance.is_finite() {
            return Err(format!(
                "pcg_tolerance must be positive and finite, got {}",
                self.pcg_tolerance
            ));
        }
        if self.pcg_max_iterations == 0 {
            return Err("pcg_max_iterations must be at least 1".to_string());
        }
        if self.pcg_loosening < 1.0 || !self.pcg_loosening.is_finite() {
            return Err(format!(
                "pcg_loosening must be finite and at least 1, got {}",
                self.pcg_loosening
            ));
        }
        if self.factor_precision == FactorPrecision::F32 && self.solver != SolverKind::HssPcg {
            return Err(format!(
                "factor_precision=f32 requires the hss-pcg solver (accuracy is only \
                 protected by the outer iteration); solver is {}",
                self.solver.label()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper_choices() {
        let c = KrrConfig::default();
        c.validate().unwrap();
        assert_eq!(c.leaf_size, 16);
        assert_eq!(c.normalization, Normalizer::ZScore);
        assert!(matches!(c.clustering, ClusteringMethod::TwoMeans { .. }));
        assert_eq!(c.kernel().bandwidth(), Some(1.0));
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = KrrConfig::default()
            .with_h(2.5)
            .with_lambda(0.3)
            .with_clustering(ClusteringMethod::KdTree)
            .with_solver(SolverKind::DenseCholesky);
        assert_eq!(c.h, 2.5);
        assert_eq!(c.lambda, 0.3);
        assert_eq!(c.clustering, ClusteringMethod::KdTree);
        assert_eq!(c.solver, SolverKind::DenseCholesky);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(KrrConfig::default().with_h(0.0).validate().is_err());
        assert!(KrrConfig::default().with_h(f64::NAN).validate().is_err());
        assert!(KrrConfig::default().with_lambda(-1.0).validate().is_err());
        let c = KrrConfig {
            leaf_size: 0,
            ..KrrConfig::default()
        };
        assert!(c.validate().is_err());
        let c = KrrConfig {
            tolerance: 0.0,
            ..KrrConfig::default()
        };
        assert!(c.validate().is_err());
        for bad in [
            KrrConfig {
                pcg_tolerance: 0.0,
                ..KrrConfig::default()
            },
            KrrConfig {
                pcg_tolerance: f64::NAN,
                ..KrrConfig::default()
            },
            KrrConfig {
                pcg_max_iterations: 0,
                ..KrrConfig::default()
            },
            KrrConfig {
                pcg_loosening: 0.5,
                ..KrrConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn f32_factors_require_the_pcg_solver() {
        let good = KrrConfig::default()
            .with_solver(SolverKind::HssPcg)
            .with_factor_precision(FactorPrecision::F32);
        good.validate().unwrap();
        for solver in [
            SolverKind::DenseCholesky,
            SolverKind::Hss,
            SolverKind::HssWithHSampling,
        ] {
            let bad = good.with_solver(solver);
            let err = bad.validate().unwrap_err();
            assert!(err.contains("hss-pcg"), "unexpected message: {err}");
        }
    }

    #[test]
    fn solver_labels() {
        assert_eq!(SolverKind::DenseCholesky.label(), "dense");
        assert_eq!(SolverKind::Hss.label(), "hss");
        assert_eq!(SolverKind::HssWithHSampling.label(), "hss+h");
        assert_eq!(SolverKind::HssPcg.label(), "hss-pcg");
    }
}
