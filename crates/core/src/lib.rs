//! # hkrr-core
//!
//! Kernel ridge regression with hierarchical matrix approximations — the
//! paper's Algorithm 1, end to end:
//!
//! 0. **Preprocess**: normalize the features and reorder the training
//!    points with a clustering method (NP / KD / PCA / 2MN) so the kernel
//!    matrix has low-rank off-diagonal blocks,
//! 1. **Assemble** the (implicit) kernel matrix `K_ij = exp(-‖x_i-x_j‖²/2h²)`,
//! 2. **Train**: solve `(K + λI) w = y` with one of the solver back ends
//!    (dense Cholesky baseline, HSS + ULV, HSS with H-matrix accelerated
//!    sampling, or loose-HSS-preconditioned conjugate gradients on the
//!    exact operator),
//! 3. **Predict**: `y'_i = sign(w · K'(x'_i, ·))` for every test point,
//!    with one-vs-all reduction for multi-class problems.
//!
//! Every training run produces a [`TrainingReport`] with the metrics the
//! paper reports: compressed-matrix memory, maximum HSS rank, and the time
//! split into H construction, HSS sampling, the rest of HSS construction,
//! factorization, and solve (Table 4).
//!
//! The same phases are wrapped in `hkrr_telemetry` spans (`train.*`), so a
//! run with `HKRR_TRACE=<path>` set produces a chrome://tracing timeline
//! whose span durations reconcile with the report's timing fields — see
//! `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod config;
pub mod handle;
pub mod model;
pub mod multiclass;
pub mod report;

pub use config::{KrrConfig, SolverKind};
pub use handle::{DecisionModel, ModelHandle};
pub use hkrr_hss::FactorPrecision;
pub use model::{accuracy, KrrModel, ModelParts, TrainedFactors};
pub use multiclass::MulticlassKrr;
pub use report::TrainingReport;

/// Errors surfaced by the training pipeline.
#[derive(Debug)]
pub enum KrrError {
    /// The training inputs are inconsistent (sizes, labels).
    InvalidInput(String),
    /// A linear-algebra kernel failed.
    Linalg(hkrr_linalg::LinalgError),
    /// HSS compression failed.
    Hss(hkrr_hss::construct::HssError),
}

impl std::fmt::Display for KrrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KrrError::InvalidInput(s) => write!(f, "invalid input: {s}"),
            KrrError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            KrrError::Hss(e) => write!(f, "HSS error: {e}"),
        }
    }
}

impl std::error::Error for KrrError {}

impl From<hkrr_linalg::LinalgError> for KrrError {
    fn from(e: hkrr_linalg::LinalgError) -> Self {
        KrrError::Linalg(e)
    }
}

impl From<hkrr_hss::construct::HssError> for KrrError {
    fn from(e: hkrr_hss::construct::HssError) -> Self {
        KrrError::Hss(e)
    }
}
